//! Platform-level error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the platform layer and the data planes beneath it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// No bundle registered under this name.
    UnknownFunction(String),
    /// Function referenced by a workflow is not deployed.
    NotDeployed(String),
    /// A transfer between functions failed (transport/trap details in the
    /// message).
    Transfer(String),
    /// A workflow specification is structurally invalid.
    InvalidWorkflow(String),
    /// Access denied by Roadrunner's trust validation.
    AccessDenied(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            PlatformError::NotDeployed(n) => write!(f, "function `{n}` is not deployed"),
            PlatformError::Transfer(msg) => write!(f, "transfer failed: {msg}"),
            PlatformError::InvalidWorkflow(msg) => write!(f, "invalid workflow: {msg}"),
            PlatformError::AccessDenied(msg) => write!(f, "access denied: {msg}"),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PlatformError::UnknownFunction("f".into()).to_string().contains("`f`"));
        assert!(PlatformError::Transfer("boom".into()).to_string().contains("boom"));
        assert!(PlatformError::AccessDenied("x".into()).to_string().contains("denied"));
    }
}
