//! Function placement.
//!
//! Roadrunner explicitly does *not* control placement: it "optimizes
//! communication regardless of the scheduler's decisions" (paper §2.2).
//! The schedulers here stand in for the orchestrator, at two levels:
//!
//! * [`Scheduler`] places one function at a time ([`RoundRobin`],
//!   [`Pinned`]) — enough for the paper's single-workflow experiments.
//! * [`PlacementPolicy`] places a whole **workflow instance** onto the
//!   cluster it observes through a live [`ResourceView`] snapshot: the
//!   per-node backlog every earlier admission created, refreshed at each
//!   instance's arrival. Policies therefore route around hot nodes
//!   without keeping private counters, and they keep working when an
//!   autoscaler grows or shrinks the active node set between arrivals.
//!
//! The instance-level policies:
//!
//! * [`LocalityFirst`] packs each instance onto the least-backlogged
//!   node (maximizing user-/kernel-space edges for Roadrunner to
//!   exploit);
//! * [`SpreadLoad`] spreads functions across nodes in ascending-backlog
//!   order (maximizing parallel cores, at the price of network edges);
//! * [`PackThenSpill`] packs onto one node until its backlog exceeds a
//!   threshold, then spills to the next — the locality/spread hybrid the
//!   elastic experiments sweep;
//! * [`RoundRobin`] and [`Pinned`] also implement the instance seam, so
//!   the classic per-function strategies drive the load generator too.
//!
//! **The overload-steering seam.** The `ResourceView` snapshot is also
//! where circuit breakers steer placement: before a policy looks, the
//! load engine adds each open circuit's configured backlog penalty to
//! its node (see [`overload`](crate::overload)), so every policy here
//! routes away from a misbehaving node *without any change to its own
//! arithmetic* — the penalty is indistinguishable from real backlog.
//! One caveat worth knowing when tuning: [`SpreadLoad`] sorts nodes by
//! backlog and then round-robins functions over the whole sorted order,
//! so a penalized node drops to the *back* of the order but still
//! receives every `node_count`-th function — breaker penalties demote a
//! node under SpreadLoad, they cannot evacuate it. [`LocalityFirst`]
//! and [`PackThenSpill`] pack onto the front of the order, so for them
//! the penalty is a full evacuation until the circuit closes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use roadrunner_vkernel::sched::ResourceView;

use crate::workflow::WorkflowSpec;

/// A placement decision: which node a function instance runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the node in the testbed.
    pub node: usize,
}

/// Strategy assigning functions to nodes.
pub trait Scheduler: Send + Sync {
    /// Chooses a node for `function` in a cluster of `node_count` nodes.
    fn place(&self, function: &str, node_count: usize) -> Placement;
}

/// Spreads placements across nodes in arrival order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// Creates a scheduler starting at node 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn place(&self, _function: &str, node_count: usize) -> Placement {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        Placement { node: idx % node_count.max(1) }
    }
}

/// As an instance policy, round-robin packs the whole k-th instance onto
/// node `k mod n` — load-blind by design, the control baseline the
/// backlog-aware policies are measured against.
impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn place(&mut self, spec: &WorkflowSpec, view: &ResourceView) -> Vec<usize> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        vec![idx % view.node_count(); spec.functions().len()]
    }

    fn reset(&mut self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

/// Explicit placements with a default node for unlisted functions —
/// what the experiments use to pin function `a` to the edge node and
/// function `b` to the cloud node.
#[derive(Debug, Default)]
pub struct Pinned {
    map: HashMap<String, usize>,
    default: usize,
}

impl Pinned {
    /// Creates a pinned scheduler defaulting to node `default`.
    pub fn new(default: usize) -> Self {
        Self { map: HashMap::new(), default }
    }

    /// Pins `function` to `node` (chainable).
    pub fn pin(mut self, function: impl Into<String>, node: usize) -> Self {
        self.map.insert(function.into(), node);
        self
    }
}

impl Scheduler for Pinned {
    fn place(&self, function: &str, node_count: usize) -> Placement {
        let node = self.map.get(function).copied().unwrap_or(self.default);
        Placement { node: node.min(node_count.saturating_sub(1)) }
    }
}

/// As an instance policy, pinning ignores the live view entirely but
/// clamps every pin to the currently active node set, so a placement map
/// written for a large cluster keeps working after the autoscaler shrank
/// it.
impl PlacementPolicy for Pinned {
    fn name(&self) -> &'static str {
        "pinned"
    }

    fn place(&mut self, spec: &WorkflowSpec, view: &ResourceView) -> Vec<usize> {
        // Views are non-empty by construction (every SchedResources
        // constructor rejects zero nodes); saturate anyway so a hostile
        // view degrades to node 0 instead of underflowing.
        let last = view.node_count().saturating_sub(1);
        spec.functions()
            .iter()
            .map(|f| self.map.get(*f).copied().unwrap_or(self.default).min(last))
            .collect()
    }

    fn reset(&mut self) {}
}

/// Assigns every function of a workflow instance to a cluster node,
/// observing the live [`ResourceView`] snapshot taken at the instance's
/// arrival.
///
/// The view already reflects every earlier admission's reservations
/// (including in-flight instances), so policies need no private load
/// counters — and placements automatically follow capacity as an
/// autoscaler resizes the cluster between arrivals. The returned vector
/// is indexed by the spec's DAG node index (the same index
/// [`WorkflowDag::nodes`](crate::dag::WorkflowDag) iterates in) and feeds
/// [`DataPlane::placement`](crate::workflow::DataPlane) through
/// [`crate::loadgen::Placed`].
///
/// Determinism contract: given identical views and call sequences, a
/// policy must return identical assignments (ties broken by node index,
/// integral arithmetic only).
pub trait PlacementPolicy: Send {
    /// Human-readable policy name (used in benchmark series labels).
    fn name(&self) -> &'static str;

    /// Chooses a node for every function of `spec`, observing the live
    /// cluster state in `view`.
    fn place(&mut self, spec: &WorkflowSpec, view: &ResourceView) -> Vec<usize>;

    /// Forgets any internal cursor state (between benchmark cells).
    fn reset(&mut self);
}

/// Orders nodes `a` and `b` by core-normalized backlog (`backlog/cores`
/// ascending), compared by cross-multiplication so the arithmetic stays
/// integral (and therefore deterministic across platforms). The single
/// definition of "less loaded" every backlog-aware policy shares.
fn backlog_order(view: &ResourceView, a: usize, b: usize) -> std::cmp::Ordering {
    let lhs = u128::from(view.node(a).backlog_ns) * u128::from(view.node(b).cores);
    let rhs = u128::from(view.node(b).backlog_ns) * u128::from(view.node(a).cores);
    lhs.cmp(&rhs)
}

/// Index of the node minimizing `backlog/cores`, ties to the lowest
/// index.
fn least_backlogged(view: &ResourceView) -> usize {
    (0..view.node_count())
        .min_by(|&a, &b| backlog_order(view, a, b))
        .expect("resource views are non-empty")
}

/// Packs the **whole instance** onto the node with the least live
/// backlog (normalized by its core count): every edge becomes a
/// user-/kernel-space edge, which is exactly the regime Roadrunner's
/// co-location modes accelerate.
#[derive(Debug, Default)]
pub struct LocalityFirst;

impl LocalityFirst {
    /// A fresh policy.
    pub fn new() -> Self {
        Self
    }
}

impl PlacementPolicy for LocalityFirst {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn place(&mut self, spec: &WorkflowSpec, view: &ResourceView) -> Vec<usize> {
        vec![least_backlogged(view); spec.functions().len()]
    }

    fn reset(&mut self) {}
}

/// Spreads the functions of every instance across the cluster: nodes are
/// ranked by ascending live backlog (normalized by core count, ties to
/// the lowest index) and functions deal round-robin over that ranking —
/// maximal parallel cores, at the price of turning workflow edges into
/// network transfers.
#[derive(Debug, Default)]
pub struct SpreadLoad;

impl SpreadLoad {
    /// A fresh policy.
    pub fn new() -> Self {
        Self
    }
}

impl PlacementPolicy for SpreadLoad {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn place(&mut self, spec: &WorkflowSpec, view: &ResourceView) -> Vec<usize> {
        let mut order: Vec<usize> = (0..view.node_count()).collect();
        order.sort_by(|&a, &b| backlog_order(view, a, b).then(a.cmp(&b)));
        (0..spec.functions().len()).map(|i| order[i % order.len()]).collect()
    }

    fn reset(&mut self) {}
}

/// The paper-style locality/spread hybrid: keep **packing** the busiest
/// node whose backlog is still at or under the spill threshold (so
/// instances co-locate and Roadrunner's kernel-space edges stay in
/// play), and only when every candidate is saturated **spill** to the
/// least-backlogged node. Ties break to the lowest index; the whole
/// instance lands on one node either way.
#[derive(Debug)]
pub struct PackThenSpill {
    spill_backlog_ns: u64,
}

impl PackThenSpill {
    /// A policy spilling once a node's backlog exceeds
    /// `spill_backlog_ns`.
    pub fn new(spill_backlog_ns: u64) -> Self {
        Self { spill_backlog_ns }
    }

    /// The configured spill threshold.
    pub fn spill_backlog_ns(&self) -> u64 {
        self.spill_backlog_ns
    }
}

impl PlacementPolicy for PackThenSpill {
    fn name(&self) -> &'static str {
        "pack_spill"
    }

    fn place(&mut self, spec: &WorkflowSpec, view: &ResourceView) -> Vec<usize> {
        let node = (0..view.node_count())
            .filter(|&i| view.node(i).backlog_ns <= self.spill_backlog_ns)
            .max_by(|&a, &b| {
                // Busiest-but-under-threshold wins; ties to the LOWEST
                // index (max_by keeps the later of equals, so order the
                // index comparison accordingly).
                view.node(a)
                    .backlog_ns
                    .cmp(&view.node(b).backlog_ns)
                    .then(b.cmp(&a))
            })
            .unwrap_or_else(|| least_backlogged(view));
        vec![node; spec.functions().len()]
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadrunner_vkernel::sched::SchedResources;

    #[test]
    fn round_robin_cycles() {
        let s = RoundRobin::new();
        assert_eq!(Scheduler::place(&s, "a", 2).node, 0);
        assert_eq!(Scheduler::place(&s, "b", 2).node, 1);
        assert_eq!(Scheduler::place(&s, "c", 2).node, 0);
    }

    #[test]
    fn round_robin_survives_single_node() {
        let s = RoundRobin::new();
        assert_eq!(Scheduler::place(&s, "a", 1).node, 0);
        assert_eq!(Scheduler::place(&s, "b", 0).node, 0);
    }

    #[test]
    fn pinned_uses_map_then_default() {
        let s = Pinned::new(1).pin("a", 0);
        assert_eq!(Scheduler::place(&s, "a", 2).node, 0);
        assert_eq!(Scheduler::place(&s, "other", 2).node, 1);
    }

    #[test]
    fn pinned_clamps_to_cluster_size() {
        let s = Pinned::new(0).pin("a", 9);
        assert_eq!(Scheduler::place(&s, "a", 2).node, 1);
    }

    fn chain(name: &str) -> WorkflowSpec {
        WorkflowSpec::sequence(name, "t", ["f".to_owned(), "g".to_owned(), "h".to_owned()])
    }

    /// Backlog of `b` ns on each named node, 4 cores each, snapshot at 0.
    fn view_of(backlogs: &[u64]) -> roadrunner_vkernel::ResourceView {
        let mut res = SchedResources::new(backlogs.len(), 4);
        for (i, &b) in backlogs.iter().enumerate() {
            for _ in 0..res.cpu(i).capacity() {
                res.cpu(i).reserve(0, b);
            }
        }
        res.view(0)
    }

    #[test]
    fn locality_first_packs_onto_the_least_backlogged_node() {
        let mut policy = LocalityFirst::new();
        let a = policy.place(&chain("a"), &view_of(&[500, 100, 900]));
        assert_eq!(a, vec![1, 1, 1]);
        // All idle: ties break to the lowest index.
        let b = policy.place(&chain("b"), &view_of(&[0, 0, 0]));
        assert_eq!(b, vec![0, 0, 0]);
    }

    #[test]
    fn locality_follows_live_backlog_across_instances() {
        // Two instances admitted against the *same* resources: the
        // second observes the first's reservations and moves on.
        let mut res = SchedResources::new(2, 1);
        let mut policy = LocalityFirst::new();
        let first = policy.place(&chain("a"), &res.view(0));
        assert_eq!(first[0], 0);
        res.cpu(first[0]).reserve(0, 10_000);
        let second = policy.place(&chain("b"), &res.view(0));
        assert_eq!(second[0], 1, "live backlog must steer the second instance away");
    }

    #[test]
    fn spread_load_deals_functions_in_backlog_order() {
        let mut policy = SpreadLoad::new();
        // Ranking by backlog: node 2 (idle), node 0, node 1.
        let got = policy.place(&chain("a"), &view_of(&[300, 700, 0]));
        assert_eq!(got, vec![2, 0, 1]);
        // More functions than nodes: wraps around the ranking.
        let spec = WorkflowSpec::sequence(
            "wide",
            "t",
            (0..5).map(|i| format!("f{i}")).collect::<Vec<_>>(),
        );
        assert_eq!(policy.place(&spec, &view_of(&[0, 100])), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn policies_weight_backlog_by_core_count() {
        // Same absolute backlog: the 8-core node drains it twice as fast,
        // so it is the less-loaded choice.
        let mut res = SchedResources::heterogeneous(&[4, 8]);
        for i in 0..2 {
            for _ in 0..res.cpu(i).capacity() {
                res.cpu(i).reserve(0, 1_000);
            }
        }
        let view = res.view(0);
        assert_eq!(view.node(0).backlog_ns, view.node(1).backlog_ns);
        let mut policy = LocalityFirst::new();
        assert_eq!(policy.place(&chain("a"), &view)[0], 1);
    }

    #[test]
    fn pack_then_spill_packs_until_the_threshold_then_moves() {
        let mut policy = PackThenSpill::new(1_000);
        // Node 0 busiest under threshold: keep packing it.
        assert_eq!(policy.place(&chain("a"), &view_of(&[800, 200, 0])), vec![0, 0, 0]);
        // Node 0 over threshold: the busiest *under* it wins.
        assert_eq!(policy.place(&chain("b"), &view_of(&[1_500, 200, 0])), vec![1, 1, 1]);
        // Everyone over threshold: spill to the least backlogged.
        assert_eq!(
            policy.place(&chain("c"), &view_of(&[1_500, 2_000, 1_800])),
            vec![0, 0, 0]
        );
        // Ties under the threshold break to the lowest index.
        assert_eq!(policy.place(&chain("d"), &view_of(&[300, 300, 0])), vec![0, 0, 0]);
        assert_eq!(policy.spill_backlog_ns(), 1_000);
    }

    #[test]
    fn round_robin_instances_rotate_over_the_active_set() {
        let mut policy = RoundRobin::new();
        let view = view_of(&[0, 0, 0]);
        assert_eq!(PlacementPolicy::place(&mut policy, &chain("a"), &view), vec![0; 3]);
        assert_eq!(PlacementPolicy::place(&mut policy, &chain("b"), &view), vec![1; 3]);
        assert_eq!(PlacementPolicy::place(&mut policy, &chain("c"), &view), vec![2; 3]);
        assert_eq!(PlacementPolicy::place(&mut policy, &chain("d"), &view), vec![0; 3]);
        policy.reset();
        assert_eq!(PlacementPolicy::place(&mut policy, &chain("e"), &view), vec![0; 3]);
    }

    #[test]
    fn pinned_instances_clamp_to_the_active_set() {
        let mut policy = Pinned::new(0).pin("f", 5).pin("g", 1);
        let got = PlacementPolicy::place(&mut policy, &chain("a"), &view_of(&[0, 0]));
        // f pinned past the active set clamps to the last node.
        assert_eq!(got, vec![1, 1, 0]);
    }

    #[test]
    fn policies_are_deterministic_given_the_same_view() {
        let view = view_of(&[400, 100, 100, 900]);
        let spec = chain("a");
        for policy in [
            &mut LocalityFirst::new() as &mut dyn PlacementPolicy,
            &mut SpreadLoad::new(),
            &mut PackThenSpill::new(500),
        ] {
            let a = policy.place(&spec, &view);
            let b = policy.place(&spec, &view);
            assert_eq!(a, b, "{} must be deterministic", policy.name());
        }
    }
}
