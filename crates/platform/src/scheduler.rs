//! Function placement.
//!
//! Roadrunner explicitly does *not* control placement: it "optimizes
//! communication regardless of the scheduler's decisions" (paper §2.2).
//! The schedulers here stand in for the orchestrator: they assign
//! functions to nodes; the communication layer then derives the best
//! transfer mode from wherever functions landed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A placement decision: which node a function instance runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the node in the testbed.
    pub node: usize,
}

/// Strategy assigning functions to nodes.
pub trait Scheduler: Send + Sync {
    /// Chooses a node for `function` in a cluster of `node_count` nodes.
    fn place(&self, function: &str, node_count: usize) -> Placement;
}

/// Spreads placements across nodes in arrival order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// Creates a scheduler starting at node 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn place(&self, _function: &str, node_count: usize) -> Placement {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        Placement { node: idx % node_count.max(1) }
    }
}

/// Explicit placements with a default node for unlisted functions —
/// what the experiments use to pin function `a` to the edge node and
/// function `b` to the cloud node.
#[derive(Debug, Default)]
pub struct Pinned {
    map: HashMap<String, usize>,
    default: usize,
}

impl Pinned {
    /// Creates a pinned scheduler defaulting to node `default`.
    pub fn new(default: usize) -> Self {
        Self { map: HashMap::new(), default }
    }

    /// Pins `function` to `node` (chainable).
    pub fn pin(mut self, function: impl Into<String>, node: usize) -> Self {
        self.map.insert(function.into(), node);
        self
    }
}

impl Scheduler for Pinned {
    fn place(&self, function: &str, node_count: usize) -> Placement {
        let node = self.map.get(function).copied().unwrap_or(self.default);
        Placement { node: node.min(node_count.saturating_sub(1)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let s = RoundRobin::new();
        assert_eq!(s.place("a", 2).node, 0);
        assert_eq!(s.place("b", 2).node, 1);
        assert_eq!(s.place("c", 2).node, 0);
    }

    #[test]
    fn round_robin_survives_single_node() {
        let s = RoundRobin::new();
        assert_eq!(s.place("a", 1).node, 0);
        assert_eq!(s.place("b", 0).node, 0);
    }

    #[test]
    fn pinned_uses_map_then_default() {
        let s = Pinned::new(1).pin("a", 0);
        assert_eq!(s.place("a", 2).node, 0);
        assert_eq!(s.place("other", 2).node, 1);
    }

    #[test]
    fn pinned_clamps_to_cluster_size() {
        let s = Pinned::new(0).pin("a", 9);
        assert_eq!(s.place("a", 2).node, 1);
    }
}
