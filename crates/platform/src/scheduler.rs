//! Function placement.
//!
//! Roadrunner explicitly does *not* control placement: it "optimizes
//! communication regardless of the scheduler's decisions" (paper §2.2).
//! The schedulers here stand in for the orchestrator, at two levels:
//!
//! * [`Scheduler`] places one function at a time ([`RoundRobin`],
//!   [`Pinned`]) — enough for the paper's single-workflow experiments.
//! * [`PlacementPolicy`] places a whole **workflow instance** onto a
//!   cluster it observes ([`ClusterNodes`]), tracking cumulative load
//!   across instances — what the multi-tenant load generator
//!   ([`crate::loadgen`]) drives. [`LocalityFirst`] packs each instance
//!   onto one node (maximizing user-/kernel-space edges for Roadrunner to
//!   exploit); [`SpreadLoad`] spreads functions across nodes
//!   (maximizing parallel cores, at the price of network edges).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::workflow::WorkflowSpec;

/// A placement decision: which node a function instance runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the node in the testbed.
    pub node: usize,
}

/// Strategy assigning functions to nodes.
pub trait Scheduler: Send + Sync {
    /// Chooses a node for `function` in a cluster of `node_count` nodes.
    fn place(&self, function: &str, node_count: usize) -> Placement;
}

/// Spreads placements across nodes in arrival order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// Creates a scheduler starting at node 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn place(&self, _function: &str, node_count: usize) -> Placement {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        Placement { node: idx % node_count.max(1) }
    }
}

/// Explicit placements with a default node for unlisted functions —
/// what the experiments use to pin function `a` to the edge node and
/// function `b` to the cloud node.
#[derive(Debug, Default)]
pub struct Pinned {
    map: HashMap<String, usize>,
    default: usize,
}

impl Pinned {
    /// Creates a pinned scheduler defaulting to node `default`.
    pub fn new(default: usize) -> Self {
        Self { map: HashMap::new(), default }
    }

    /// Pins `function` to `node` (chainable).
    pub fn pin(mut self, function: impl Into<String>, node: usize) -> Self {
        self.map.insert(function.into(), node);
        self
    }
}

impl Scheduler for Pinned {
    fn place(&self, function: &str, node_count: usize) -> Placement {
        let node = self.map.get(function).copied().unwrap_or(self.default);
        Placement { node: node.min(node_count.saturating_sub(1)) }
    }
}

/// What a placement policy sees of the cluster: per-node core counts.
///
/// Built from a testbed with [`ClusterNodes::of`], or directly from a
/// core-count slice for tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterNodes {
    cores: Vec<u32>,
}

impl ClusterNodes {
    /// A view over explicit per-node core counts.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty or contains a zero.
    pub fn new(cores: Vec<u32>) -> Self {
        assert!(!cores.is_empty(), "a cluster view needs at least one node");
        assert!(cores.iter().all(|&c| c > 0), "every node needs at least one core");
        Self { cores }
    }

    /// The view of `testbed`'s nodes.
    pub fn of(testbed: &roadrunner_vkernel::Testbed) -> Self {
        Self::new(testbed.nodes().iter().map(|n| n.cores()).collect())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cores.len()
    }

    /// Core count of node `i`.
    pub fn cores(&self, i: usize) -> u32 {
        self.cores[i]
    }
}

/// Assigns every function of a workflow instance to a cluster node.
///
/// Policies are stateful: they observe the load their own past
/// assignments created, so successive instances land where capacity
/// remains. The returned vector is indexed by the spec's DAG node index
/// (the same index [`WorkflowDag::nodes`](crate::dag::WorkflowDag)
/// iterates in) and feeds
/// [`DataPlane::placement`](crate::workflow::DataPlane) through
/// [`crate::loadgen::Placed`].
pub trait PlacementPolicy: Send {
    /// Human-readable policy name (used in benchmark series labels).
    fn name(&self) -> &'static str;

    /// Chooses a node for every function of `spec`, observing `cluster`.
    fn assign(&mut self, spec: &WorkflowSpec, cluster: &ClusterNodes) -> Vec<usize>;

    /// Forgets accumulated load (between benchmark cells).
    fn reset(&mut self);
}

/// Picks the least-loaded node (normalized by its core count) and packs
/// the **whole instance** there: every edge becomes a user-/kernel-space
/// edge, which is exactly the regime Roadrunner's co-location modes
/// accelerate. Load is counted in assigned functions.
#[derive(Debug, Default)]
pub struct LocalityFirst {
    load: Vec<u64>,
}

impl LocalityFirst {
    /// A fresh policy with no accumulated load.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Index of the node minimizing `load/cores`, ties to the lowest index.
/// Compared by cross-multiplication so the arithmetic stays integral
/// (and therefore deterministic across platforms).
fn least_loaded(load: &[u64], cluster: &ClusterNodes) -> usize {
    (0..load.len())
        .min_by(|&a, &b| {
            let lhs = load[a] * u64::from(cluster.cores(b));
            let rhs = load[b] * u64::from(cluster.cores(a));
            lhs.cmp(&rhs)
        })
        .expect("cluster views are non-empty")
}

impl PlacementPolicy for LocalityFirst {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn assign(&mut self, spec: &WorkflowSpec, cluster: &ClusterNodes) -> Vec<usize> {
        self.load.resize(cluster.node_count(), 0);
        let functions = spec.functions().len();
        let node = least_loaded(&self.load, cluster);
        self.load[node] += functions as u64;
        vec![node; functions]
    }

    fn reset(&mut self) {
        self.load.clear();
    }
}

/// Spreads the functions of every instance across the cluster, each onto
/// the currently least-loaded node (normalized by core count): maximal
/// parallel cores, at the price of turning workflow edges into network
/// transfers.
#[derive(Debug, Default)]
pub struct SpreadLoad {
    load: Vec<u64>,
}

impl SpreadLoad {
    /// A fresh policy with no accumulated load.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PlacementPolicy for SpreadLoad {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn assign(&mut self, spec: &WorkflowSpec, cluster: &ClusterNodes) -> Vec<usize> {
        self.load.resize(cluster.node_count(), 0);
        spec.functions()
            .iter()
            .map(|_| {
                let node = least_loaded(&self.load, cluster);
                self.load[node] += 1;
                node
            })
            .collect()
    }

    fn reset(&mut self) {
        self.load.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let s = RoundRobin::new();
        assert_eq!(s.place("a", 2).node, 0);
        assert_eq!(s.place("b", 2).node, 1);
        assert_eq!(s.place("c", 2).node, 0);
    }

    #[test]
    fn round_robin_survives_single_node() {
        let s = RoundRobin::new();
        assert_eq!(s.place("a", 1).node, 0);
        assert_eq!(s.place("b", 0).node, 0);
    }

    #[test]
    fn pinned_uses_map_then_default() {
        let s = Pinned::new(1).pin("a", 0);
        assert_eq!(s.place("a", 2).node, 0);
        assert_eq!(s.place("other", 2).node, 1);
    }

    #[test]
    fn pinned_clamps_to_cluster_size() {
        let s = Pinned::new(0).pin("a", 9);
        assert_eq!(s.place("a", 2).node, 1);
    }

    fn chain(name: &str) -> WorkflowSpec {
        WorkflowSpec::sequence(name, "t", ["f".to_owned(), "g".to_owned(), "h".to_owned()])
    }

    #[test]
    fn locality_first_packs_instances_and_rotates_nodes() {
        let cluster = ClusterNodes::new(vec![4, 4, 4]);
        let mut policy = LocalityFirst::new();
        let a = policy.assign(&chain("a"), &cluster);
        let b = policy.assign(&chain("b"), &cluster);
        let c = policy.assign(&chain("c"), &cluster);
        let d = policy.assign(&chain("d"), &cluster);
        // Each instance fully packed on one node…
        for assignment in [&a, &b, &c, &d] {
            assert_eq!(assignment.len(), 3);
            assert!(assignment.iter().all(|&n| n == assignment[0]));
        }
        // …and successive instances rotate onto the least-loaded node.
        assert_eq!((a[0], b[0], c[0], d[0]), (0, 1, 2, 0));
    }

    #[test]
    fn spread_load_distributes_functions_across_nodes() {
        let cluster = ClusterNodes::new(vec![4, 4, 4]);
        let mut policy = SpreadLoad::new();
        let a = policy.assign(&chain("a"), &cluster);
        assert_eq!(a, vec![0, 1, 2]);
        let b = policy.assign(&chain("b"), &cluster);
        assert_eq!(b, vec![0, 1, 2]);
    }

    #[test]
    fn policies_weight_load_by_core_count() {
        // An 8-core node absorbs twice the functions of a 4-core node
        // before it stops being the least-loaded choice.
        let cluster = ClusterNodes::new(vec![4, 8]);
        let mut policy = SpreadLoad::new();
        let picks: Vec<usize> = (0..6)
            .flat_map(|i| {
                policy.assign(
                    &WorkflowSpec::sequence(
                        format!("wf{i}"),
                        "t",
                        ["x".to_owned(), "y".to_owned()],
                    ),
                    &cluster,
                )
            })
            .collect();
        let on_big = picks.iter().filter(|&&n| n == 1).count();
        assert_eq!(on_big, 8, "picks were {picks:?}");
        assert_eq!(picks.len() - on_big, 4);
    }

    #[test]
    fn policy_reset_forgets_load() {
        let cluster = ClusterNodes::new(vec![4, 4]);
        let mut policy = LocalityFirst::new();
        assert_eq!(policy.assign(&chain("a"), &cluster)[0], 0);
        assert_eq!(policy.assign(&chain("b"), &cluster)[0], 1);
        policy.reset();
        assert_eq!(policy.assign(&chain("c"), &cluster)[0], 0);
    }

    #[test]
    fn cluster_nodes_view_of_testbed() {
        let bed = roadrunner_vkernel::Testbed::paper();
        let view = ClusterNodes::of(&bed);
        assert_eq!(view.node_count(), 2);
        assert_eq!(view.cores(0), 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_view_panics() {
        ClusterNodes::new(Vec::new());
    }
}
