//! Metrics collection and summarization for experiment runs.

use roadrunner_vkernel::Nanos;

/// One observation: an operation's latency plus the resource deltas its
/// sandboxes accumulated — the tuple every figure in the paper plots.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Series label (e.g. `roadrunner-user/100MB`).
    pub label: String,
    /// End-to-end latency.
    pub latency_ns: Nanos,
    /// User-space CPU time consumed.
    pub user_cpu_ns: Nanos,
    /// Kernel-space CPU time consumed.
    pub kernel_cpu_ns: Nanos,
    /// Peak RAM in bytes.
    pub ram_peak: u64,
}

/// Summary statistics over samples sharing a label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean_latency_ns: f64,
    /// Minimum latency.
    pub min_latency_ns: Nanos,
    /// Maximum latency.
    pub max_latency_ns: Nanos,
    /// Median latency.
    pub p50_latency_ns: Nanos,
    /// Mean user CPU.
    pub mean_user_cpu_ns: f64,
    /// Mean kernel CPU.
    pub mean_kernel_cpu_ns: f64,
    /// Maximum RAM peak.
    pub max_ram_peak: u64,
}

/// Latency percentile digest over a set of observations — the
/// tail-latency view the load experiments report (p50/p95/p99), which
/// mean-centric summaries like [`Summary`] cannot show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileSummary {
    /// Number of observations.
    pub count: usize,
    /// Mean latency.
    pub mean_ns: f64,
    /// Minimum latency.
    pub min_ns: Nanos,
    /// Median (nearest-rank).
    pub p50_ns: Nanos,
    /// 95th percentile (nearest-rank).
    pub p95_ns: Nanos,
    /// 99th percentile (nearest-rank).
    pub p99_ns: Nanos,
    /// Maximum latency.
    pub max_ns: Nanos,
}

/// Nearest-rank percentile digest of `latencies`; `None` when empty.
///
/// Nearest-rank means the reported value is always an *observed*
/// latency: the ⌈q·N/100⌉-th smallest observation.
pub fn percentiles(latencies: &[Nanos]) -> Option<PercentileSummary> {
    if latencies.is_empty() {
        return None;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let count = sorted.len();
    let rank = |q: usize| sorted[(count * q).div_ceil(100).max(1) - 1];
    Some(PercentileSummary {
        count,
        mean_ns: sorted.iter().sum::<u64>() as f64 / count as f64,
        min_ns: sorted[0],
        p50_ns: rank(50),
        p95_ns: rank(95),
        p99_ns: rank(99),
        max_ns: sorted[count - 1],
    })
}

/// Accumulates samples across experiment repetitions.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    samples: Vec<Sample>,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Distinct labels in first-seen order.
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !out.contains(&s.label.as_str()) {
                out.push(&s.label);
            }
        }
        out
    }

    /// Summary statistics for one label; `None` if no samples carry it.
    pub fn summary(&self, label: &str) -> Option<Summary> {
        let subset: Vec<&Sample> = self.samples.iter().filter(|s| s.label == label).collect();
        if subset.is_empty() {
            return None;
        }
        let mut latencies: Vec<Nanos> = subset.iter().map(|s| s.latency_ns).collect();
        latencies.sort_unstable();
        let count = subset.len();
        Some(Summary {
            count,
            mean_latency_ns: latencies.iter().sum::<u64>() as f64 / count as f64,
            min_latency_ns: latencies[0],
            max_latency_ns: latencies[count - 1],
            p50_latency_ns: latencies[count / 2],
            mean_user_cpu_ns: subset.iter().map(|s| s.user_cpu_ns).sum::<u64>() as f64
                / count as f64,
            mean_kernel_cpu_ns: subset.iter().map(|s| s.kernel_cpu_ns).sum::<u64>() as f64
                / count as f64,
            max_ram_peak: subset.iter().map(|s| s.ram_peak).max().unwrap_or(0),
        })
    }

    /// Percentile digest of the latencies recorded under `label`; `None`
    /// if no samples carry it.
    pub fn percentiles(&self, label: &str) -> Option<PercentileSummary> {
        let latencies: Vec<Nanos> = self
            .samples
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.latency_ns)
            .collect();
        percentiles(&latencies)
    }

    /// Clears recorded samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: &str, latency: Nanos) -> Sample {
        Sample {
            label: label.into(),
            latency_ns: latency,
            user_cpu_ns: latency / 2,
            kernel_cpu_ns: latency / 4,
            ram_peak: 1024,
        }
    }

    #[test]
    fn summary_statistics() {
        let mut m = MetricsCollector::new();
        for latency in [100, 200, 300] {
            m.record(sample("x", latency));
        }
        let s = m.summary("x").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean_latency_ns, 200.0);
        assert_eq!(s.min_latency_ns, 100);
        assert_eq!(s.max_latency_ns, 300);
        assert_eq!(s.p50_latency_ns, 200);
        assert_eq!(s.max_ram_peak, 1024);
    }

    #[test]
    fn missing_label_is_none() {
        assert!(MetricsCollector::new().summary("nope").is_none());
    }

    #[test]
    fn labels_in_first_seen_order() {
        let mut m = MetricsCollector::new();
        m.record(sample("b", 1));
        m.record(sample("a", 1));
        m.record(sample("b", 2));
        assert_eq!(m.labels(), vec!["b", "a"]);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // 1..=100: pXX is exactly XX.
        let latencies: Vec<Nanos> = (1..=100).collect();
        let p = percentiles(&latencies).unwrap();
        assert_eq!(p.count, 100);
        assert_eq!(p.min_ns, 1);
        assert_eq!(p.p50_ns, 50);
        assert_eq!(p.p95_ns, 95);
        assert_eq!(p.p99_ns, 99);
        assert_eq!(p.max_ns, 100);
        assert_eq!(p.mean_ns, 50.5);
    }

    #[test]
    fn percentiles_are_observed_values_for_small_counts() {
        let p = percentiles(&[400, 100]).unwrap();
        assert_eq!(p.p50_ns, 100);
        assert_eq!(p.p95_ns, 400);
        assert_eq!(p.p99_ns, 400);
        let single = percentiles(&[7]).unwrap();
        assert_eq!((single.p50_ns, single.p95_ns, single.p99_ns), (7, 7, 7));
        assert!(percentiles(&[]).is_none());
    }

    #[test]
    fn collector_percentiles_filter_by_label() {
        let mut m = MetricsCollector::new();
        for latency in [10, 20, 30] {
            m.record(sample("x", latency));
        }
        m.record(sample("y", 1_000_000));
        let p = m.percentiles("x").unwrap();
        assert_eq!(p.count, 3);
        assert_eq!(p.max_ns, 30);
        assert!(m.percentiles("nope").is_none());
    }

    #[test]
    fn clear_resets() {
        let mut m = MetricsCollector::new();
        m.record(sample("x", 1));
        m.clear();
        assert!(m.samples().is_empty());
        assert!(m.summary("x").is_none());
    }
}
