//! Metrics collection and summarization for experiment runs.

use roadrunner_vkernel::Nanos;

/// One observation: an operation's latency plus the resource deltas its
/// sandboxes accumulated — the tuple every figure in the paper plots.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Series label (e.g. `roadrunner-user/100MB`).
    pub label: String,
    /// End-to-end latency.
    pub latency_ns: Nanos,
    /// User-space CPU time consumed.
    pub user_cpu_ns: Nanos,
    /// Kernel-space CPU time consumed.
    pub kernel_cpu_ns: Nanos,
    /// Peak RAM in bytes.
    pub ram_peak: u64,
}

/// Summary statistics over samples sharing a label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean_latency_ns: f64,
    /// Minimum latency.
    pub min_latency_ns: Nanos,
    /// Maximum latency.
    pub max_latency_ns: Nanos,
    /// Median latency.
    pub p50_latency_ns: Nanos,
    /// Mean user CPU.
    pub mean_user_cpu_ns: f64,
    /// Mean kernel CPU.
    pub mean_kernel_cpu_ns: f64,
    /// Maximum RAM peak.
    pub max_ram_peak: u64,
}

/// Latency percentile digest over a set of observations — the
/// tail-latency view the load experiments report (p50/p95/p99), which
/// mean-centric summaries like [`Summary`] cannot show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileSummary {
    /// Number of observations.
    pub count: usize,
    /// Mean latency.
    pub mean_ns: f64,
    /// Minimum latency.
    pub min_ns: Nanos,
    /// Median (nearest-rank).
    pub p50_ns: Nanos,
    /// 95th percentile (nearest-rank).
    pub p95_ns: Nanos,
    /// 99th percentile (nearest-rank).
    pub p99_ns: Nanos,
    /// Maximum latency.
    pub max_ns: Nanos,
}

/// Nearest-rank percentile digest of `latencies`; `None` when empty.
///
/// Nearest-rank means the reported value is always an *observed*
/// latency: the ⌈q·N/100⌉-th smallest observation. Copies and sorts;
/// callers that already hold (or cache) a sorted sample should use
/// [`percentiles_sorted`] and skip the per-query sort.
pub fn percentiles(latencies: &[Nanos]) -> Option<PercentileSummary> {
    if latencies.is_empty() {
        return None;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    percentiles_sorted(&sorted)
}

/// [`percentiles`] over an already **ascending-sorted** sample — pure
/// rank lookups, no copy, no sort. Produces bit-identical digests to
/// [`percentiles`] on the same observations.
///
/// # Panics
///
/// May return nonsensical ranks (debug builds assert) if `sorted` is not
/// actually sorted.
pub fn percentiles_sorted(sorted: &[Nanos]) -> Option<PercentileSummary> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let count = sorted.len();
    let rank = |q: usize| sorted[(count * q).div_ceil(100).max(1) - 1];
    Some(PercentileSummary {
        count,
        mean_ns: sorted.iter().sum::<u64>() as f64 / count as f64,
        min_ns: sorted[0],
        p50_ns: rank(50),
        p95_ns: rank(95),
        p99_ns: rank(99),
        max_ns: sorted[count - 1],
    })
}

/// One statistic replicated across seeds: the across-seed mean plus a
/// nearest-rank order-statistic confidence interval.
///
/// With `K` replicas the interval spans the `⌈0.025·K⌉`-th smallest to
/// the symmetric-from-the-top order statistic — a distribution-free
/// ~95% CI for the median of the replicated statistic. For the small
/// replica counts sweeps actually use (K ≤ 40) the ranks degenerate to
/// the first and last order statistics, i.e. the interval is exactly
/// `[min, max]`, which always brackets the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicatedStat {
    /// Mean of the statistic across replicas.
    pub mean: f64,
    /// Smallest replica value.
    pub min: f64,
    /// Largest replica value.
    pub max: f64,
    /// Lower confidence bound (an observed replica value).
    pub ci_lo: f64,
    /// Upper confidence bound (an observed replica value).
    pub ci_hi: f64,
}

impl ReplicatedStat {
    /// Replicates `values` (one per seed); `None` when empty. Sorting
    /// is by `f64::total_cmp`, so the result is invariant under any
    /// permutation of the replicas.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let k = sorted.len();
        // Symmetric order-statistic ranks: lo = ⌈0.025·K⌉ clamped to
        // ≥1, hi mirrored from the top. For K ≤ 40, lo = 1 and
        // hi = K — the interval is [min, max].
        let lo_rank = ((0.025 * k as f64).ceil() as usize).max(1);
        let hi_rank = k + 1 - lo_rank;
        Some(Self {
            mean: sorted.iter().sum::<f64>() / k as f64,
            min: sorted[0],
            max: sorted[k - 1],
            ci_lo: sorted[lo_rank - 1],
            ci_hi: sorted[hi_rank - 1],
        })
    }
}

/// A multi-seed replication of a latency digest: per-seed
/// [`PercentileSummary`] runs collapsed into across-seed
/// [`ReplicatedStat`]s for the mean and each tail percentile — the
/// "N runs, mean ± CI" row the figure tables report instead of a
/// single-seed point estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Replicated {
    /// Number of seed replicas collapsed.
    pub seeds: usize,
    /// Total observations across all replicas.
    pub count: usize,
    /// Across-seed replication of the per-run mean latency.
    pub mean_ns: ReplicatedStat,
    /// Across-seed replication of the per-run p50.
    pub p50_ns: ReplicatedStat,
    /// Across-seed replication of the per-run p95.
    pub p95_ns: ReplicatedStat,
    /// Across-seed replication of the per-run p99.
    pub p99_ns: ReplicatedStat,
    /// Across-seed replication of the per-run max.
    pub max_ns: ReplicatedStat,
}

/// Collapses per-seed digests into a [`Replicated`] summary; `None`
/// when `runs` is empty.
///
/// Permutation-invariant in the order of `runs` (every statistic is
/// reduced through a sort), and a single run degenerates exactly to
/// that run's digest: mean/min/max/ci_lo/ci_hi of each statistic all
/// equal the one observed value.
pub fn replicate(runs: &[PercentileSummary]) -> Option<Replicated> {
    if runs.is_empty() {
        return None;
    }
    let stat = |pick: fn(&PercentileSummary) -> f64| {
        let values: Vec<f64> = runs.iter().map(pick).collect();
        ReplicatedStat::from_values(&values).expect("runs is non-empty")
    };
    Some(Replicated {
        seeds: runs.len(),
        count: runs.iter().map(|r| r.count).sum(),
        mean_ns: stat(|r| r.mean_ns),
        p50_ns: stat(|r| r.p50_ns as f64),
        p95_ns: stat(|r| r.p95_ns as f64),
        p99_ns: stat(|r| r.p99_ns as f64),
        max_ns: stat(|r| r.max_ns as f64),
    })
}

/// Number of observations a [`StreamingPercentiles`] digest holds
/// exactly before switching to the P² estimators: below this the
/// summary equals the nearest-rank path bit for bit.
pub const STREAMING_EXACT_MAX: usize = 64;

/// One streaming quantile estimated with the P² algorithm (Jain &
/// Chlamtac, CACM 1985): five markers track the running quantile in O(1)
/// space and O(1) time per observation, no buffer, no sort.
///
/// Estimates are exact for the first five observations (the markers
/// *are* the sorted observations) and approximate after, with the
/// classic piecewise-parabolic marker adjustment.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    count: usize,
    /// Marker heights (estimated quantile values).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
}

impl P2Quantile {
    /// An estimator for quantile `q` (e.g. `0.95`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must lie strictly between 0 and 1");
        Self {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;
        // Find the marker cell the observation falls into, clamping the
        // extremes to the observed min/max.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (0..4)
                .rev()
                .find(|&i| self.heights[i] <= x)
                .expect("x >= heights[0] here")
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers toward their desired
        // positions, parabolically when possible.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let ahead = self.positions[i + 1] - self.positions[i];
            let behind = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.heights[i] = if self.heights[i - 1] < candidate
                    && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, s)
                };
                self.positions[i] += s;
            }
        }
    }

    /// Piecewise-parabolic (P²) prediction of marker `i` moved by `s`.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (h, p) = (&self.heights, &self.positions);
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabola would leave the bracket.
    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate; `None` before the first observation. Exact
    /// (an observed value) while fewer than five observations exist.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut sorted = self.heights[..n].to_vec();
                sorted.sort_by(f64::total_cmp);
                // Nearest-rank on the partial buffer.
                let rank = ((n as f64 * self.q).ceil() as usize).clamp(1, n);
                Some(sorted[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// A constant-space streaming latency digest: exact nearest-rank up to
/// [`STREAMING_EXACT_MAX`] observations, then P² estimators for
/// p50/p95/p99 — the scale path for load runs with 10⁶ instances where
/// [`percentiles`]' sort-a-full-copy would dominate.
///
/// The reported digest is always internally consistent: `min ≤ p50 ≤
/// p95 ≤ p99 ≤ max` (estimates are clamped into the observed range and
/// made monotone).
#[derive(Debug, Clone)]
pub struct StreamingPercentiles {
    /// Exact buffer while small; drained once the estimators take over.
    small: Vec<Nanos>,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    count: usize,
    min_ns: Nanos,
    max_ns: Nanos,
    sum: u128,
}

impl StreamingPercentiles {
    /// An empty digest.
    pub fn new() -> Self {
        Self {
            small: Vec::new(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            count: 0,
            min_ns: Nanos::MAX,
            max_ns: 0,
            sum: 0,
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Records one latency observation.
    pub fn record(&mut self, ns: Nanos) {
        self.count += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.sum += u128::from(ns);
        if self.count <= STREAMING_EXACT_MAX {
            self.small.push(ns);
        } else if !self.small.is_empty() {
            // Crossing over: replay the exact buffer into the
            // estimators, then stream.
            for &v in &self.small {
                let x = v as f64;
                self.p50.record(x);
                self.p95.record(x);
                self.p99.record(x);
            }
            self.small = Vec::new();
        }
        if self.small.is_empty() {
            let x = ns as f64;
            self.p50.record(x);
            self.p95.record(x);
            self.p99.record(x);
        }
    }

    /// Merges `other` into `self` — the per-tenant → run-level rollup
    /// seam, combining two digests without re-sorting raw samples.
    ///
    /// `count`, `min`, `max` and the mean are always **exact** after a
    /// merge. Percentiles are exact while both sides still hold their
    /// raw buffers (the merged digest replays every raw value, so it
    /// equals a digest fed the concatenated stream); once either side
    /// has crossed into P² estimation, the merge reconstructs each
    /// side's piecewise-linear inverse CDF from its marker state and
    /// feeds fresh estimators a count-proportional synthetic resample —
    /// approximate, deterministic, and always inside `[min, max]`.
    pub fn merge(&mut self, other: &StreamingPercentiles) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let count = self.count + other.count;
        let min_ns = self.min_ns.min(other.min_ns);
        let max_ns = self.max_ns.max(other.max_ns);
        let sum = self.sum + other.sum;
        if !self.small.is_empty() && !other.small.is_empty() {
            // Both sides still hold every raw value: replaying the
            // concatenation is exact (and crosses over to estimators
            // by itself if the union outgrows the exact buffer).
            let mut fresh = Self::new();
            for &v in self.small.iter().chain(&other.small) {
                fresh.record(v);
            }
            *self = fresh;
            return;
        }
        // At least one side is estimator-only: build each side's
        // piecewise-linear CDF from its marker state and invert the
        // count-weighted mixture at each tracked quantile. Inversion by
        // bisection over [min, max] is deterministic and always lands
        // inside the correct population, even for bimodal mixtures
        // where re-streaming synthetic samples through P² would smear
        // the gap.
        let points_a = self.inverse_cdf_points();
        let points_b = other.inverse_cdf_points();
        let (weight_a, weight_b) = (self.count as f64, other.count as f64);
        let mixture_cdf = |v: f64| {
            (weight_a * forward_cdf(&points_a, v) + weight_b * forward_cdf(&points_b, v))
                / (weight_a + weight_b)
        };
        let invert = |q: f64| {
            let (mut lo, mut hi) = (min_ns as f64, max_ns as f64);
            for _ in 0..64 {
                let mid = 0.5 * (lo + hi);
                if mixture_cdf(mid) < q {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            hi
        };
        let mut fresh = Self::new();
        // A single recorded value makes each estimator report exactly
        // that value; `summary()` then clamps and monotonizes as usual.
        fresh.p50.record(invert(0.50));
        fresh.p95.record(invert(0.95));
        fresh.p99.record(invert(0.99));
        fresh.count = count;
        fresh.min_ns = min_ns;
        fresh.max_ns = max_ns;
        fresh.sum = sum;
        *self = fresh;
    }

    /// The digest's inverse CDF as monotone `(fraction, value)` control
    /// points: the sorted raw buffer while exact, otherwise the three
    /// P² estimators' 15 markers (each marker's position approximates
    /// the rank at its fraction) bracketed by the exact min/max.
    fn inverse_cdf_points(&self) -> Vec<(f64, f64)> {
        if !self.small.is_empty() {
            let mut sorted = self.small.clone();
            sorted.sort_unstable();
            let n = sorted.len();
            if n == 1 {
                let v = sorted[0] as f64;
                return vec![(0.0, v), (1.0, v)];
            }
            return sorted
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 / (n - 1) as f64, v as f64))
                .collect();
        }
        let (lo, hi) = (self.min_ns as f64, self.max_ns as f64);
        let mut points = vec![(0.0, lo)];
        for est in [&self.p50, &self.p95, &self.p99] {
            let n = est.count as f64;
            for i in 0..5 {
                let f = ((est.positions[i] - 1.0) / (n - 1.0)).clamp(0.0, 1.0);
                points.push((f, est.heights[i].clamp(lo, hi)));
            }
        }
        points.push((1.0, hi));
        points.sort_by(|a, b| a.partial_cmp(b).expect("fractions and heights are finite"));
        // Enforce a monotone value profile (P² markers can be locally
        // non-monotone against mixed fractions).
        let mut floor = f64::NEG_INFINITY;
        for p in &mut points {
            p.1 = p.1.max(floor);
            floor = p.1;
        }
        points
    }

    /// The digest so far; `None` before the first observation. Equals
    /// [`percentiles`] exactly while at most [`STREAMING_EXACT_MAX`]
    /// observations have been recorded.
    pub fn summary(&self) -> Option<PercentileSummary> {
        if self.count == 0 {
            return None;
        }
        if !self.small.is_empty() {
            return percentiles(&self.small);
        }
        let clamp = |est: Option<f64>| -> Nanos {
            let v = est.unwrap_or(0.0).round();
            (v.max(0.0) as Nanos).clamp(self.min_ns, self.max_ns)
        };
        let p50 = clamp(self.p50.estimate());
        let p95 = clamp(self.p95.estimate()).max(p50);
        let p99 = clamp(self.p99.estimate()).max(p95);
        Some(PercentileSummary {
            count: self.count,
            mean_ns: (self.sum as f64) / self.count as f64,
            min_ns: self.min_ns,
            p50_ns: p50,
            p95_ns: p95,
            p99_ns: p99,
            max_ns: self.max_ns,
        })
    }
}

impl Default for StreamingPercentiles {
    fn default() -> Self {
        Self::new()
    }
}

/// Evaluates a monotone `(fraction, value)` inverse-CDF polyline as a
/// forward CDF: the fraction of mass at or below `v`.
fn forward_cdf(points: &[(f64, f64)], v: f64) -> f64 {
    debug_assert!(!points.is_empty());
    if v < points[0].1 {
        return 0.0;
    }
    for pair in points.windows(2) {
        let ((f0, v0), (f1, v1)) = (pair[0], pair[1]);
        if v <= v1 {
            if v1 <= v0 {
                return f1;
            }
            return f0 + (f1 - f0) * (v - v0) / (v1 - v0);
        }
    }
    1.0
}

/// Accumulates samples across experiment repetitions.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    samples: Vec<Sample>,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Distinct labels in first-seen order.
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !out.contains(&s.label.as_str()) {
                out.push(&s.label);
            }
        }
        out
    }

    /// Summary statistics for one label; `None` if no samples carry it.
    pub fn summary(&self, label: &str) -> Option<Summary> {
        let subset: Vec<&Sample> = self.samples.iter().filter(|s| s.label == label).collect();
        if subset.is_empty() {
            return None;
        }
        let mut latencies: Vec<Nanos> = subset.iter().map(|s| s.latency_ns).collect();
        latencies.sort_unstable();
        let count = subset.len();
        Some(Summary {
            count,
            mean_latency_ns: latencies.iter().sum::<u64>() as f64 / count as f64,
            min_latency_ns: latencies[0],
            max_latency_ns: latencies[count - 1],
            p50_latency_ns: latencies[count / 2],
            mean_user_cpu_ns: subset.iter().map(|s| s.user_cpu_ns).sum::<u64>() as f64
                / count as f64,
            mean_kernel_cpu_ns: subset.iter().map(|s| s.kernel_cpu_ns).sum::<u64>() as f64
                / count as f64,
            max_ram_peak: subset.iter().map(|s| s.ram_peak).max().unwrap_or(0),
        })
    }

    /// Percentile digest of the latencies recorded under `label`; `None`
    /// if no samples carry it.
    pub fn percentiles(&self, label: &str) -> Option<PercentileSummary> {
        let latencies: Vec<Nanos> = self
            .samples
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.latency_ns)
            .collect();
        percentiles(&latencies)
    }

    /// Clears recorded samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: &str, latency: Nanos) -> Sample {
        Sample {
            label: label.into(),
            latency_ns: latency,
            user_cpu_ns: latency / 2,
            kernel_cpu_ns: latency / 4,
            ram_peak: 1024,
        }
    }

    #[test]
    fn summary_statistics() {
        let mut m = MetricsCollector::new();
        for latency in [100, 200, 300] {
            m.record(sample("x", latency));
        }
        let s = m.summary("x").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean_latency_ns, 200.0);
        assert_eq!(s.min_latency_ns, 100);
        assert_eq!(s.max_latency_ns, 300);
        assert_eq!(s.p50_latency_ns, 200);
        assert_eq!(s.max_ram_peak, 1024);
    }

    #[test]
    fn missing_label_is_none() {
        assert!(MetricsCollector::new().summary("nope").is_none());
    }

    #[test]
    fn labels_in_first_seen_order() {
        let mut m = MetricsCollector::new();
        m.record(sample("b", 1));
        m.record(sample("a", 1));
        m.record(sample("b", 2));
        assert_eq!(m.labels(), vec!["b", "a"]);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // 1..=100: pXX is exactly XX.
        let latencies: Vec<Nanos> = (1..=100).collect();
        let p = percentiles(&latencies).unwrap();
        assert_eq!(p.count, 100);
        assert_eq!(p.min_ns, 1);
        assert_eq!(p.p50_ns, 50);
        assert_eq!(p.p95_ns, 95);
        assert_eq!(p.p99_ns, 99);
        assert_eq!(p.max_ns, 100);
        assert_eq!(p.mean_ns, 50.5);
    }

    #[test]
    fn percentiles_are_observed_values_for_small_counts() {
        let p = percentiles(&[400, 100]).unwrap();
        assert_eq!(p.p50_ns, 100);
        assert_eq!(p.p95_ns, 400);
        assert_eq!(p.p99_ns, 400);
        let single = percentiles(&[7]).unwrap();
        assert_eq!((single.p50_ns, single.p95_ns, single.p99_ns), (7, 7, 7));
        assert!(percentiles(&[]).is_none());
    }

    #[test]
    fn collector_percentiles_filter_by_label() {
        let mut m = MetricsCollector::new();
        for latency in [10, 20, 30] {
            m.record(sample("x", latency));
        }
        m.record(sample("y", 1_000_000));
        let p = m.percentiles("x").unwrap();
        assert_eq!(p.count, 3);
        assert_eq!(p.max_ns, 30);
        assert!(m.percentiles("nope").is_none());
    }

    #[test]
    fn streaming_digest_is_exact_below_the_buffer_threshold() {
        let mut digest = StreamingPercentiles::new();
        let values: Vec<Nanos> = (1..=STREAMING_EXACT_MAX as u64).rev().collect();
        for &v in &values {
            digest.record(v);
        }
        let stream = digest.summary().unwrap();
        let exact = percentiles(&values).unwrap();
        assert_eq!(stream, exact, "small-n digest must equal the nearest-rank path");
        assert!(StreamingPercentiles::new().summary().is_none());
    }

    #[test]
    fn streaming_digest_tracks_large_uniform_streams() {
        // 10_000 values 1..=10_000 in a scrambled deterministic order.
        let mut digest = StreamingPercentiles::new();
        let n: u64 = 10_000;
        let mut v: Vec<Nanos> = (1..=n).collect();
        let mut state = 0xDEADBEEFu64;
        for i in (1..v.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        for &x in &v {
            digest.record(x);
        }
        let s = digest.summary().unwrap();
        assert_eq!(s.count, 10_000);
        assert_eq!((s.min_ns, s.max_ns), (1, 10_000));
        assert_eq!(s.mean_ns, 5_000.5);
        let within = |got: Nanos, want: u64, tol: u64| {
            assert!(
                got.abs_diff(want) <= tol,
                "estimate {got} strays more than {tol} from {want}"
            );
        };
        within(s.p50_ns, 5_000, 250);
        within(s.p95_ns, 9_500, 250);
        within(s.p99_ns, 9_900, 150);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
    }

    #[test]
    fn streaming_digest_survives_constant_streams() {
        let mut digest = StreamingPercentiles::new();
        for _ in 0..500 {
            digest.record(42);
        }
        let s = digest.summary().unwrap();
        assert_eq!((s.min_ns, s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns), (42, 42, 42, 42, 42));
    }

    #[test]
    fn p2_estimator_is_exact_for_tiny_streams() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        for v in [40.0, 10.0, 30.0] {
            p.record(v);
        }
        assert_eq!(p.count(), 3);
        assert_eq!(p.quantile(), 0.5);
        // Nearest-rank median of {10, 30, 40} is 30.
        assert_eq!(p.estimate(), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "strictly between")]
    fn p2_rejects_degenerate_quantiles() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn replicated_stat_small_k_interval_is_min_max() {
        let s = ReplicatedStat::from_values(&[30.0, 10.0, 20.0]).unwrap();
        assert_eq!(s.mean, 20.0);
        assert_eq!((s.min, s.max), (10.0, 30.0));
        assert_eq!((s.ci_lo, s.ci_hi), (10.0, 30.0));
        assert!(ReplicatedStat::from_values(&[]).is_none());
    }

    #[test]
    fn replicated_stat_large_k_trims_symmetric_tails() {
        // K = 100: lo rank = ⌈2.5⌉ = 3, hi rank = 98.
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = ReplicatedStat::from_values(&values).unwrap();
        assert_eq!((s.ci_lo, s.ci_hi), (3.0, 98.0));
        assert_eq!((s.min, s.max), (1.0, 100.0));
        assert!(s.ci_lo <= s.mean && s.mean <= s.ci_hi);
    }

    #[test]
    fn replicate_single_run_degenerates_to_the_digest() {
        let run = percentiles(&[10, 20, 30, 40]).unwrap();
        let rep = replicate(&[run]).unwrap();
        assert_eq!(rep.seeds, 1);
        assert_eq!(rep.count, run.count);
        for (stat, want) in [
            (rep.mean_ns, run.mean_ns),
            (rep.p50_ns, run.p50_ns as f64),
            (rep.p95_ns, run.p95_ns as f64),
            (rep.p99_ns, run.p99_ns as f64),
            (rep.max_ns, run.max_ns as f64),
        ] {
            assert_eq!(stat.mean, want);
            assert_eq!(stat.min, want);
            assert_eq!(stat.max, want);
            assert_eq!(stat.ci_lo, want);
            assert_eq!(stat.ci_hi, want);
        }
        assert!(replicate(&[]).is_none());
    }

    #[test]
    fn replicate_is_seed_order_invariant() {
        let runs: Vec<PercentileSummary> = [&[5u64, 9, 40][..], &[100, 200][..], &[7][..]]
            .iter()
            .map(|obs| percentiles(obs).unwrap())
            .collect();
        let forward = replicate(&runs).unwrap();
        let mut reversed = runs.clone();
        reversed.reverse();
        assert_eq!(forward, replicate(&reversed).unwrap());
        assert_eq!(forward.seeds, 3);
        assert_eq!(forward.count, 6);
        assert!(forward.p95_ns.ci_lo <= forward.p95_ns.mean);
        assert!(forward.p95_ns.mean <= forward.p95_ns.ci_hi);
    }

    #[test]
    fn clear_resets() {
        let mut m = MetricsCollector::new();
        m.record(sample("x", 1));
        m.clear();
        assert!(m.samples().is_empty());
        assert!(m.summary("x").is_none());
    }

    #[test]
    fn merge_with_empty_sides_is_identity_or_clone() {
        let mut a = StreamingPercentiles::new();
        let empty = StreamingPercentiles::new();
        a.merge(&empty);
        assert_eq!(a.count(), 0);
        let mut b = StreamingPercentiles::new();
        for v in [10, 20, 30] {
            b.record(v);
        }
        let before = b.summary();
        b.merge(&empty);
        assert_eq!(b.summary(), before, "merging an empty digest must be a no-op");
        let mut c = StreamingPercentiles::new();
        c.merge(&b);
        assert_eq!(c.summary(), before, "merging into an empty digest clones the other side");
    }

    #[test]
    fn merge_in_the_exact_regime_equals_the_concatenated_stream() {
        let mut a = StreamingPercentiles::new();
        let mut b = StreamingPercentiles::new();
        let mut concat = StreamingPercentiles::new();
        for i in 0..20u64 {
            a.record(i * 7 + 3);
            concat.record(i * 7 + 3);
        }
        for i in 0..20u64 {
            b.record(i * 13 + 1);
            concat.record(i * 13 + 1);
        }
        a.merge(&b);
        assert_eq!(a.summary(), concat.summary(), "≤ 64 total observations must stay exact");
    }

    #[test]
    fn merge_exact_sides_crossing_the_buffer_replays_all_raw_values() {
        // 40 + 40 raw values: both sides exact, union (80) crosses the
        // 64-value buffer. The merge must replay the full concatenation,
        // matching a digest fed the same stream directly.
        let mut a = StreamingPercentiles::new();
        let mut b = StreamingPercentiles::new();
        let mut concat = StreamingPercentiles::new();
        for i in 0..40u64 {
            a.record(i * 11 + 5);
            concat.record(i * 11 + 5);
        }
        for i in 0..40u64 {
            b.record(i * 17 + 2);
            concat.record(i * 17 + 2);
        }
        a.merge(&b);
        let (merged, direct) = (a.summary().unwrap(), concat.summary().unwrap());
        assert_eq!(merged, direct, "replaying both raw buffers must equal the direct stream");
    }

    #[test]
    fn merge_of_estimator_digests_tracks_exact_percentiles() {
        // Two disjoint uniform populations, both past the exact buffer.
        let mut a = StreamingPercentiles::new();
        let mut b = StreamingPercentiles::new();
        let mut all: Vec<Nanos> = Vec::new();
        for i in 0..600u64 {
            let v = 1_000 + i * 10; // uniform 1k..7k
            a.record(v);
            all.push(v);
        }
        for i in 0..400u64 {
            let v = 50_000 + i * 25; // uniform 50k..60k
            b.record(v);
            all.push(v);
        }
        a.merge(&b);
        let merged = a.summary().unwrap();
        all.sort_unstable();
        let exact = percentiles_sorted(&all).unwrap();
        assert_eq!(merged.count, exact.count);
        assert_eq!(merged.min_ns, exact.min_ns);
        assert_eq!(merged.max_ns, exact.max_ns);
        assert!((merged.mean_ns - exact.mean_ns).abs() < 1e-6, "mean is exact under merge");
        // The 60/40 split puts p50 in the low population and p95/p99 in
        // the high one; the resampled estimate must land in the right
        // population and within a loose relative band of the exact rank.
        for (est, want) in [
            (merged.p50_ns, exact.p50_ns),
            (merged.p95_ns, exact.p95_ns),
            (merged.p99_ns, exact.p99_ns),
        ] {
            let (lo, hi) = (want as f64 * 0.85, want as f64 * 1.15);
            assert!(
                (est as f64) >= lo && (est as f64) <= hi,
                "estimate {est} strayed from exact {want}"
            );
        }
        // Internal consistency survives the merge.
        assert!(merged.min_ns <= merged.p50_ns);
        assert!(merged.p50_ns <= merged.p95_ns);
        assert!(merged.p95_ns <= merged.p99_ns);
        assert!(merged.p99_ns <= merged.max_ns);
    }

    #[test]
    fn merge_is_deterministic() {
        let build = || {
            let mut a = StreamingPercentiles::new();
            let mut b = StreamingPercentiles::new();
            for i in 0..300u64 {
                a.record(i * i % 9_973 + 1);
                b.record(i * 31 % 7_919 + 1);
            }
            a.merge(&b);
            a.summary().unwrap()
        };
        assert_eq!(build(), build());
    }
}
