//! Deterministic transfer-cost memoization.
//!
//! A load sweep admits thousands of instances of the *same* workflow
//! carrying the *same* payload over the *same* deployment. Every plane in
//! this workspace is deterministic: the outcome of one edge — received
//! bytes, prepare/transfer/consume attribution, virtual-clock advance —
//! is a pure function of the edge's endpoints, the placement the plane
//! derived for them, and the payload bytes. Recomputing the codec and
//! cost-model work per instance (Roadrunner's Wasm moves, the baselines'
//! serialize → HTTP → deserialize path) is therefore pure wall-clock
//! rework; the paper's own shim design (§4) makes the point that
//! identical deliveries should cost once.
//!
//! [`MemoizedPlane`] wraps any [`DataPlane`] and caches each distinct
//! `(from, to, placement(from), placement(to), payload)` transfer. On a
//! hit it replays the recorded outcome exactly — including advancing the
//! shared [`VirtualClock`] by the recorded amount — so **virtual-time
//! results are byte-identical** with and without the memo (property-
//! tested in `tests/memo_properties.rs`, asserted against the fig12 and
//! fig13 JSON output in CI).
//!
//! # Soundness contract
//!
//! The wrapper is sound for planes whose transfers are deterministic
//! functions of the key above. That holds for [`RoadrunnerPlane`],
//! `RuncPair` and `WasmedgePair` provided per-instance state is cyclic
//! (each workflow instance returns the plane to its pre-instance state —
//! true for the produce/relay/consume deployments the benches drive, and
//! exactly the property the fig13 determinism assert already relies on).
//! First-run one-off effects (lazy connection establishment, guest heap
//! growth) are *not* cyclic: warm the plane with one discarded run before
//! wrapping, as every bench already does.
//! Side effects the memo does **not** replay: sandbox CPU/RAM telemetry
//! accounts. Do not memoize runs whose *measured output* includes
//! telemetry (the paper figures fig2–fig10); the load figures read only
//! virtual-time quantities and scheduler reservations, which replay
//! exactly.
//!
//! [`RoadrunnerPlane`]: https://docs.rs/roadrunner

use std::collections::HashMap;

use bytes::Bytes;
use roadrunner_vkernel::{Nanos, VirtualClock};

use crate::error::PlatformError;
use crate::workflow::{fnv1a, DataPlane, TransferTiming};

/// One recorded transfer outcome, with the full key retained so a (once
/// in 2⁶⁴) composite-hash collision is detected and bypassed instead of
/// silently replaying the wrong edge.
#[derive(Debug, Clone)]
struct MemoEntry {
    from: String,
    to: String,
    src: Option<usize>,
    dst: Option<usize>,
    len: usize,
    fingerprint: u64,
    epoch: u64,
    received: Bytes,
    timing: Option<TransferTiming>,
    clock_advance_ns: Nanos,
}

impl MemoEntry {
    #[allow(clippy::too_many_arguments)]
    fn matches(
        &self,
        from: &str,
        to: &str,
        src: Option<usize>,
        dst: Option<usize>,
        len: usize,
        fingerprint: u64,
        epoch: u64,
    ) -> bool {
        self.from == from
            && self.to == to
            && self.src == src
            && self.dst == dst
            && self.len == len
            && self.fingerprint == fingerprint
            && self.epoch == epoch
    }
}

/// A transfer-cost memo over any [`DataPlane`] (see the [module
/// docs](self) for the soundness contract).
///
/// The first occurrence of an edge runs on the wrapped plane for real;
/// repeats replay the recorded received bytes (a reference-counted
/// handle, no copy), the recorded [`TransferTiming`] and the recorded
/// virtual-clock advance. Payloads are fingerprinted once per distinct
/// buffer: the fingerprint cache is keyed by the buffer's address and
/// length, and every fingerprinted buffer is pinned (a clone is held) so
/// an address can never be recycled for different bytes while the memo
/// lives.
pub struct MemoizedPlane<'a> {
    inner: &'a mut dyn DataPlane,
    clock: VirtualClock,
    entries: HashMap<u64, MemoEntry>,
    fingerprints: HashMap<(usize, usize), u64>,
    pinned: Vec<Bytes>,
    /// Link-health epoch mixed into every key: bumped by the load
    /// engines on each outage transition, so recordings made while a
    /// link was up are never replayed while it is down (and vice
    /// versa). Stays 0 when no failures are injected.
    health_epoch: u64,
    hits: u64,
    misses: u64,
    bypasses: u64,
}

impl std::fmt::Debug for MemoizedPlane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoizedPlane")
            .field("entries", &self.entries.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("bypasses", &self.bypasses)
            .finish_non_exhaustive()
    }
}

/// Mixes one u64 into a running FNV-1a hash.
fn mix(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix_str(hash: u64, s: &str) -> u64 {
    let mut h = hash;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Terminator so ("ab","c") and ("a","bc") hash differently.
    mix(h, 0xFF)
}

impl<'a> MemoizedPlane<'a> {
    /// Wraps `inner`, replaying recorded outcomes against `clock` (the
    /// same shared clock the wrapped plane advances as it works).
    pub fn new(inner: &'a mut dyn DataPlane, clock: VirtualClock) -> Self {
        Self {
            inner,
            clock,
            entries: HashMap::new(),
            fingerprints: HashMap::new(),
            pinned: Vec::new(),
            health_epoch: 0,
            hits: 0,
            misses: 0,
            bypasses: 0,
        }
    }

    /// Transfers served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Transfers that ran on the wrapped plane (and were recorded).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Transfers that ran uncached because a composite-hash collision was
    /// detected (expected to stay 0 in any realistic run).
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Number of distinct transfers recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets every recorded transfer and fingerprint (e.g. after the
    /// wrapped plane was redeployed).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.fingerprints.clear();
        self.pinned.clear();
    }

    /// FNV-1a fingerprint of `payload`, computed once per distinct
    /// buffer. The buffer is pinned so the `(address, length)` cache key
    /// stays unique for the memo's lifetime.
    fn fingerprint(&mut self, payload: &Bytes) -> u64 {
        if payload.is_empty() {
            return fnv1a(&[]);
        }
        let key = (payload.as_ref().as_ptr() as usize, payload.len());
        if let Some(&fp) = self.fingerprints.get(&key) {
            return fp;
        }
        let fp = fnv1a(payload);
        self.fingerprints.insert(key, fp);
        self.pinned.push(payload.clone());
        fp
    }
}

impl DataPlane for MemoizedPlane<'_> {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, payload).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        self.transfer_placed(from, to, payload, None, None)
    }

    fn transfer_placed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
        src_node: Option<usize>,
        dst_node: Option<usize>,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        // The key uses the *effective* placement — the per-instance
        // override when one is given, the wrapped plane's deployment
        // placement otherwise — so an edge memoized colocated is never
        // replayed for an instance whose override separated it.
        let src = src_node.or_else(|| self.inner.placement(from));
        let dst = dst_node.or_else(|| self.inner.placement(to));
        let len = payload.len();
        let fingerprint = self.fingerprint(&payload);
        let epoch = self.health_epoch;
        let key = {
            let mut h = mix_str(0xcbf2_9ce4_8422_2325, from);
            h = mix_str(h, to);
            h = mix(h, src.map(|n| n as u64 + 1).unwrap_or(0));
            h = mix(h, dst.map(|n| n as u64 + 1).unwrap_or(0));
            h = mix(h, len as u64);
            h = mix(h, fingerprint);
            mix(h, epoch)
        };
        match self.entries.get(&key) {
            Some(entry) if entry.matches(from, to, src, dst, len, fingerprint, epoch) => {
                // Hit: replay the recorded outcome, clock advance
                // included, so downstream virtual-time math is
                // indistinguishable from the real run.
                self.hits += 1;
                self.clock.advance(entry.clock_advance_ns);
                Ok((entry.received.clone(), entry.timing))
            }
            Some(_) => {
                // Composite-hash collision: run uncached rather than risk
                // replaying the wrong edge.
                self.bypasses += 1;
                self.inner.transfer_placed(from, to, payload, src_node, dst_node)
            }
            None => {
                self.misses += 1;
                let t0 = self.clock.now();
                let (received, timing) =
                    self.inner.transfer_placed(from, to, payload, src_node, dst_node)?;
                let clock_advance_ns = self.clock.now() - t0;
                self.entries.insert(
                    key,
                    MemoEntry {
                        from: from.to_owned(),
                        to: to.to_owned(),
                        src,
                        dst,
                        len,
                        fingerprint,
                        epoch,
                        received: received.clone(),
                        timing,
                        clock_advance_ns,
                    },
                );
                Ok((received, timing))
            }
        }
    }

    fn placement(&self, function: &str) -> Option<usize> {
        self.inner.placement(function)
    }

    fn set_health_epoch(&mut self, epoch: u64) {
        self.health_epoch = epoch;
        self.inner.set_health_epoch(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{execute, WorkflowSpec};

    /// A deterministic plane that counts real invocations, advances the
    /// clock, and transforms the payload (so replayed bytes are
    /// distinguishable from merely echoing the input).
    struct CountingPlane {
        clock: VirtualClock,
        calls: usize,
    }

    impl DataPlane for CountingPlane {
        fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
            self.calls += 1;
            self.clock.advance(1_000 + p.len() as u64);
            let transformed: Vec<u8> = p.iter().map(|b| b.wrapping_add(1)).collect();
            Ok(Bytes::from(transformed))
        }

        fn transfer_detailed(
            &mut self,
            from: &str,
            to: &str,
            p: Bytes,
        ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
            let transfer_ns = 1_000 + p.len() as u64;
            let received = self.transfer(from, to, p)?;
            Ok((
                received,
                Some(TransferTiming { prepare_ns: 7, transfer_ns, consume_ns: 3 }),
            ))
        }

        fn placement(&self, function: &str) -> Option<usize> {
            Some(usize::from(function.len() % 2 == 1))
        }
    }

    #[test]
    fn repeated_transfers_hit_and_replay_exactly() {
        let clock = VirtualClock::new();
        let mut plane = CountingPlane { clock: clock.clone(), calls: 0 };
        let payload = Bytes::from(vec![9u8; 500]);

        let real = {
            let mut probe = CountingPlane { clock: VirtualClock::new(), calls: 0 };
            probe.transfer_detailed("a", "b", payload.clone()).unwrap()
        };

        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let first = memo.transfer_detailed("a", "b", payload.clone()).unwrap();
        let t_after_first = clock.now();
        let second = memo.transfer_detailed("a", "b", payload.clone()).unwrap();
        assert_eq!(first.0, real.0);
        assert_eq!(first.1, real.1);
        assert_eq!(second.0, first.0);
        assert_eq!(second.1, first.1);
        // The replay advanced the clock by exactly the recorded amount.
        assert_eq!(clock.now() - t_after_first, t_after_first);
        assert_eq!((memo.hits(), memo.misses(), memo.bypasses()), (1, 1, 0));
        assert_eq!(memo.len(), 1);
        drop(memo);
        assert_eq!(plane.calls, 1, "the wrapped plane ran once");
    }

    #[test]
    fn distinct_edges_payloads_and_placements_miss() {
        let clock = VirtualClock::new();
        let mut plane = CountingPlane { clock: clock.clone(), calls: 0 };
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let p1 = Bytes::from(vec![1u8; 100]);
        let p2 = Bytes::from(vec![2u8; 100]);
        memo.transfer_detailed("a", "b", p1.clone()).unwrap();
        memo.transfer_detailed("a", "c", p1.clone()).unwrap(); // new edge
        memo.transfer_detailed("a", "b", p2.clone()).unwrap(); // new bytes
        memo.transfer_detailed("a", "b", p1.clone()).unwrap(); // hit
        assert_eq!((memo.hits(), memo.misses()), (1, 3));
        memo.clear();
        memo.transfer_detailed("a", "b", p1).unwrap();
        assert_eq!(memo.misses(), 4, "clear() forgets recordings");
    }

    #[test]
    fn fingerprints_are_cached_per_buffer_and_pinned() {
        let clock = VirtualClock::new();
        let mut plane = CountingPlane { clock: clock.clone(), calls: 0 };
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let payload = Bytes::from(vec![3u8; 64]);
        // Clones share a buffer: one fingerprint entry, one pin.
        for _ in 0..5 {
            memo.transfer_detailed("x", "y", payload.clone()).unwrap();
        }
        assert_eq!(memo.fingerprints.len(), 1);
        assert_eq!(memo.pinned.len(), 1);
        // A byte-equal but distinct buffer still hits (same fingerprint).
        let twin = Bytes::from(vec![3u8; 64]);
        memo.transfer_detailed("x", "y", twin).unwrap();
        assert_eq!(memo.hits(), 5);
    }

    #[test]
    fn serial_engine_latencies_are_identical_under_the_memo() {
        let spec = WorkflowSpec::sequence(
            "wf",
            "t",
            ["a".to_owned(), "bb".to_owned(), "c".to_owned()],
        );
        let payload = Bytes::from(vec![8u8; 2_000]);

        let clock = VirtualClock::new();
        let mut plane = CountingPlane { clock: clock.clone(), calls: 0 };
        let plain = execute(&mut plane, &clock, &spec, payload.clone()).unwrap();

        let clock = VirtualClock::new();
        let mut plane = CountingPlane { clock: clock.clone(), calls: 0 };
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let first = execute(&mut memo, &clock, &spec, payload.clone()).unwrap();
        let repeat = execute(&mut memo, &clock, &spec, payload).unwrap();
        for run in [&first, &repeat] {
            assert_eq!(run.total_latency_ns, plain.total_latency_ns);
            for (a, b) in plain.edges.iter().zip(&run.edges) {
                assert_eq!(a.latency_ns, b.latency_ns);
                assert_eq!(a.checksum(), b.checksum());
            }
        }
        drop(memo);
        assert_eq!(plane.calls, 2, "second instance fully memoized");
    }

    #[test]
    fn health_epochs_partition_the_cache() {
        let clock = VirtualClock::new();
        let mut plane = CountingPlane { clock: clock.clone(), calls: 0 };
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let p = Bytes::from(vec![5u8; 100]);
        memo.transfer_detailed("a", "b", p.clone()).unwrap();
        memo.transfer_detailed("a", "b", p.clone()).unwrap(); // hit
        memo.set_health_epoch(1);
        memo.transfer_detailed("a", "b", p.clone()).unwrap(); // new epoch: miss
        memo.set_health_epoch(0);
        memo.transfer_detailed("a", "b", p).unwrap(); // old epoch: hit again
        assert_eq!((memo.hits(), memo.misses()), (2, 2));
    }

    #[test]
    fn placement_overrides_key_separately_from_the_deployment() {
        let clock = VirtualClock::new();
        let mut plane = CountingPlane { clock: clock.clone(), calls: 0 };
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        let p = Bytes::from(vec![6u8; 100]);
        memo.transfer_detailed("a", "b", p.clone()).unwrap();
        // Overrides matching the deployment placement (both "a" and "b"
        // sit on node 1 under CountingPlane's parity rule) share the
        // entry...
        memo.transfer_placed("a", "b", p.clone(), Some(1), Some(1)).unwrap();
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        // ...while an override that moves an endpoint records afresh.
        memo.transfer_placed("a", "b", p.clone(), Some(1), Some(0)).unwrap();
        memo.transfer_placed("a", "b", p, Some(1), Some(0)).unwrap();
        assert_eq!((memo.hits(), memo.misses()), (2, 2));
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        struct Flaky {
            fail: bool,
        }
        impl DataPlane for Flaky {
            fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
                if self.fail {
                    Err(PlatformError::Transfer("down".into()))
                } else {
                    Ok(p)
                }
            }
        }
        let clock = VirtualClock::new();
        let mut plane = Flaky { fail: true };
        let mut memo = MemoizedPlane::new(&mut plane, clock.clone());
        assert!(memo.transfer("a", "b", Bytes::from_static(b"x")).is_err());
        assert!(memo.is_empty());
        drop(memo);
        // After the link recovers the transfer runs (nothing poisoned).
        plane.fail = false;
        let mut memo = MemoizedPlane::new(&mut plane, clock);
        assert!(memo.transfer("a", "b", Bytes::from_static(b"x")).is_ok());
        assert_eq!(memo.len(), 1);
    }
}
