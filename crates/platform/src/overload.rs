//! Overload control: deadlines, retry budgets, circuit breakers, and
//! load shedding.
//!
//! PR 8 made the cluster fail and heal, but recovery still assumed
//! infinite patience: retries were per-instance with no global budget,
//! admission queues grew without bound, and work that could no longer
//! meet any useful latency target was still executed to completion.
//! That combination is exactly how serverless platforms tip into
//! *metastable failure*: a burst fills the queues, naive retries
//! amplify offered load past capacity, and goodput stays collapsed
//! long after the burst ends. This module is the control layer that
//! breaks the feedback loop, spanning three seams:
//!
//! * **Deadlines** — a per-instance absolute deadline carried from
//!   admission into the workflow engine and checked at each edge's
//!   ready instant. A deadline-blown instance aborts *early* (before
//!   placing more phases) and is accounted as `deadline_exceeded`,
//!   distinct from `failed` — stale work stops burning CPU and link
//!   time the moment it can no longer be useful.
//! * **Retry budgets** — a deterministic token bucket per
//!   (tenant, function, node) layered *under* the
//!   [`RetryPolicy`](crate::workflow::RetryPolicy): a retry spends
//!   [`RETRY_COST_MILLITOKENS`], buckets refill along virtual time at a
//!   configured rate plus a per-success credit, so retry traffic is
//!   capped at a fraction of success traffic (the anti-retry-storm
//!   rule) instead of multiplying under failure.
//! * **Circuit breakers** — per-(tenant, function, node) closed → open
//!   → half-open state driven by a windowed failure rate over rotating
//!   buckets. Open circuits fail attempts fast (no phases placed) and
//!   steer placement away by penalizing the node's backlog in the
//!   [`ResourceView`] snapshot
//!   the [`PlacementPolicy`](crate::scheduler::PlacementPolicy) routes
//!   on.
//! * **Load shedding** — bounded admission queues in the load engine
//!   with a configurable policy (reject-newest, reject-oldest, or a
//!   CoDel-style sojourn target at dequeue) and smooth
//!   weighted-round-robin dequeue across tenants, so one adversarial
//!   tenant cannot starve the rest.
//!
//! **Determinism.** Every mechanism runs on integral virtual-time
//! arithmetic: bucket refill uses u128 multiply-divide with an explicit
//! remainder carry, breaker windows are aligned to absolute
//! `now / window_ns` indices, and weighted round-robin breaks ties by
//! tenant index. Two runs with the same inputs take identical
//! decisions, which is what lets the fig16 bench pin serial and
//! parallel sweeps byte-for-byte.
//!
//! All knobs default **off** ([`OverloadConfig::default`]); a run with
//! the default config is byte-identical to one without overload
//! control, which CI pins by re-diffing the fig12/fig13 references.

use std::collections::HashMap;

use roadrunner_vkernel::sched::ResourceView;
use roadrunner_vkernel::Nanos;

/// Millitokens one retry attempt costs a (tenant, function, node)
/// budget bucket. Fixed-point at 1/1000 token lets per-success credits
/// express "retries ≤ 20 % of successes" as integral arithmetic
/// (`per_success_millitokens: 200`).
pub const RETRY_COST_MILLITOKENS: u64 = 1_000;

/// Retry-budget configuration: a token bucket per (tenant, function,
/// node). A retry spends [`RETRY_COST_MILLITOKENS`]; the bucket starts
/// at `burst_millitokens` and refills deterministically along virtual
/// time plus a credit per successful attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudgetConfig {
    /// Virtual-time refill rate, in millitokens per second of virtual
    /// time. 0 makes successes (and the initial burst) the only supply.
    pub refill_millitokens_per_s: u64,
    /// Bucket capacity and initial level.
    pub burst_millitokens: u64,
    /// Credit added per successful edge attempt — the "fraction of
    /// success traffic" lever (200 ⇒ retries capped near 20 % of
    /// successes once the burst is spent).
    pub per_success_millitokens: u64,
}

impl RetryBudgetConfig {
    /// A success-coupled budget with no time refill: `burst` retries up
    /// front, then `percent` retries per 100 successes.
    pub fn fraction_of_success(burst_retries: u64, percent: u64) -> Self {
        Self {
            refill_millitokens_per_s: 0,
            burst_millitokens: burst_retries * RETRY_COST_MILLITOKENS,
            per_success_millitokens: percent * RETRY_COST_MILLITOKENS / 100,
        }
    }
}

/// One deterministic token bucket (fixed-point millitokens).
#[derive(Debug, Clone)]
struct TokenBucket {
    level_millitokens: u64,
    last_refill_ns: Nanos,
    /// Sub-millitoken refill remainder (numerator of `rate × dt / 1e9`),
    /// carried so refill is exact over any event spacing.
    carry: u64,
}

impl TokenBucket {
    fn new(cfg: &RetryBudgetConfig) -> Self {
        Self { level_millitokens: cfg.burst_millitokens, last_refill_ns: 0, carry: 0 }
    }

    /// Advances the bucket to `now`, crediting `rate × dt` with an
    /// exact remainder carry. Virtual time never runs backwards within
    /// a run; a stale `now` (same event instant) is a no-op.
    fn refill(&mut self, now: Nanos, cfg: &RetryBudgetConfig) {
        let dt = now.saturating_sub(self.last_refill_ns);
        if dt == 0 {
            return;
        }
        self.last_refill_ns = now;
        if cfg.refill_millitokens_per_s == 0 {
            return;
        }
        let numer = u128::from(dt) * u128::from(cfg.refill_millitokens_per_s)
            + u128::from(self.carry);
        let added = numer / 1_000_000_000;
        self.carry = (numer % 1_000_000_000) as u64;
        let added = u64::try_from(added).unwrap_or(u64::MAX);
        self.level_millitokens =
            self.level_millitokens.saturating_add(added).min(cfg.burst_millitokens);
    }

    fn try_spend(&mut self, cost: u64) -> bool {
        if self.level_millitokens >= cost {
            self.level_millitokens -= cost;
            true
        } else {
            false
        }
    }

    fn credit(&mut self, amount: u64, cap: u64) {
        self.level_millitokens = self.level_millitokens.saturating_add(amount).min(cap);
    }
}

/// Circuit-breaker configuration, per (tenant, function, node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Width of one failure-rate window bucket. The observed rate spans
    /// the current and previous buckets (a rotating two-bucket window),
    /// so the effective memory is one to two windows.
    pub window_ns: Nanos,
    /// Open when `failures × den ≥ total × num` over the window —
    /// the threshold failure rate as the integral fraction `num / den`
    /// (e.g. `(1, 2)` opens at 50 %).
    pub failure_rate: (u32, u32),
    /// Minimum attempts in the window before the rate is believed —
    /// one early failure must not open a cold circuit.
    pub min_samples: u32,
    /// How long an open circuit rejects before probing half-open.
    pub open_ns: Nanos,
    /// Consecutive half-open successes required to close again; any
    /// half-open failure re-opens for another `open_ns`.
    pub half_open_probes: u32,
    /// Backlog penalty applied to a node hosting any open circuit in
    /// the [`ResourceView`] placement policies route on — the steering
    /// seam that moves new placements away from a misbehaving node
    /// without changing any policy's own arithmetic.
    pub placement_penalty_ns: Nanos,
}

impl Default for BreakerConfig {
    /// 50 % failure rate over ≥ 4 samples opens for 10 ms; two probe
    /// successes close; open nodes carry a ~1.1 s backlog penalty.
    fn default() -> Self {
        Self {
            window_ns: 10_000_000,
            failure_rate: (1, 2),
            min_samples: 4,
            open_ns: 10_000_000,
            half_open_probes: 2,
            placement_penalty_ns: 1 << 30,
        }
    }
}

/// Breaker state: the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: Nanos },
    HalfOpen { successes: u32 },
}

/// One circuit's state plus its rotating failure-rate window. Window
/// buckets are aligned to absolute `now / window_ns` indices, so the
/// rotation schedule depends only on virtual time — never on event
/// multiplicity — and replays identically.
#[derive(Debug, Clone)]
struct CircuitBreaker {
    state: BreakerState,
    bucket_idx: u64,
    cur: (u32, u32),
    prev: (u32, u32),
}

impl CircuitBreaker {
    fn new() -> Self {
        Self { state: BreakerState::Closed, bucket_idx: 0, cur: (0, 0), prev: (0, 0) }
    }

    fn rotate(&mut self, now: Nanos, window_ns: Nanos) {
        let idx = now / window_ns.max(1);
        if idx == self.bucket_idx {
            return;
        }
        self.prev = if idx == self.bucket_idx + 1 { self.cur } else { (0, 0) };
        self.cur = (0, 0);
        self.bucket_idx = idx;
    }

    /// Whether an attempt may proceed at `now`. Open → half-open
    /// transition happens here (time served), so the first attempt
    /// after `open_ns` is the probe.
    fn allow(&mut self, now: Nanos) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen { .. } => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen { successes: 0 };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Pure open-at query (no transition) — the placement-steering
    /// predicate, callable while iterating an unordered map because a
    /// boolean `any` over it is order-independent.
    fn is_open_at(&self, now: Nanos) -> bool {
        matches!(self.state, BreakerState::Open { until } if now < until)
    }

    /// Records one real attempt outcome (breaker-rejected attempts are
    /// not recorded — the breaker must not poison its own window).
    fn record(&mut self, now: Nanos, ok: bool, cfg: &BreakerConfig) {
        match self.state {
            BreakerState::HalfOpen { successes } => {
                if ok {
                    let successes = successes + 1;
                    if successes >= cfg.half_open_probes.max(1) {
                        self.state = BreakerState::Closed;
                        self.cur = (0, 0);
                        self.prev = (0, 0);
                        self.bucket_idx = now / cfg.window_ns.max(1);
                    } else {
                        self.state = BreakerState::HalfOpen { successes };
                    }
                } else {
                    self.state = BreakerState::Open { until: now.saturating_add(cfg.open_ns) };
                }
            }
            BreakerState::Closed => {
                self.rotate(now, cfg.window_ns);
                self.cur.1 += 1;
                if !ok {
                    self.cur.0 += 1;
                }
                let failures = self.cur.0 + self.prev.0;
                let total = self.cur.1 + self.prev.1;
                let (num, den) = cfg.failure_rate;
                if total >= cfg.min_samples.max(1)
                    && u64::from(failures) * u64::from(den) >= u64::from(total) * u64::from(num)
                {
                    self.state = BreakerState::Open { until: now.saturating_add(cfg.open_ns) };
                }
            }
            // A late completion of an attempt admitted before the
            // circuit opened: the window is already condemned, drop it.
            BreakerState::Open { .. } => {}
        }
    }
}

/// How a full admission queue (or a stale queue entry) sheds load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// A full queue rejects the arriving instance (tail drop).
    RejectNewest,
    /// A full queue sheds the oldest queued instance cluster-wide (the
    /// one most likely already stale) and admits the new arrival.
    RejectOldest,
    /// CoDel-style: tail-drop on overflow, and additionally shed at
    /// *dequeue* any instance whose queue sojourn already exceeds
    /// `target_ns` — dead-on-arrival work never reaches the engine.
    CoDel {
        /// Queue-sojourn target past which a dequeued entry is shed.
        target_ns: Nanos,
    },
}

/// Bounded-admission configuration for the load engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Instances allowed in flight at once; arrivals beyond it queue.
    pub max_in_flight: usize,
    /// Queued instances allowed across all tenants; beyond it,
    /// `policy` sheds.
    pub queue_cap: usize,
    /// What to do when the queue is full (and, for CoDel, when a
    /// dequeued entry is stale).
    pub policy: ShedPolicy,
}

/// The full overload-control configuration. Every knob defaults to
/// `None` — the default config is the byte-identical no-op the CI
/// reference diffs pin.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverloadConfig {
    /// Per-instance deadline, relative to *arrival* (queue wait
    /// included): an instance aborts as `deadline_exceeded` at the
    /// first edge ready instant past `arrival + deadline_ns`.
    pub deadline_ns: Option<Nanos>,
    /// Retry budget per (tenant, function, node).
    pub retry_budget: Option<RetryBudgetConfig>,
    /// Circuit breakers per (tenant, function, node).
    pub breaker: Option<BreakerConfig>,
    /// Bounded admission queues with shedding and weighted-fair
    /// dequeue.
    pub queue: Option<QueueConfig>,
}

impl OverloadConfig {
    /// Whether every mechanism is disabled (the default): the engine
    /// takes the legacy code path untouched.
    pub fn is_off(&self) -> bool {
        self.deadline_ns.is_none()
            && self.retry_budget.is_none()
            && self.breaker.is_none()
            && self.queue.is_none()
    }
}

/// Per-run overload state: the budget buckets and breaker circuits,
/// keyed by (tenant, function, node). Owned by the load engine for the
/// duration of one run and threaded into the workflow engine per
/// instance.
#[derive(Debug)]
pub struct OverloadState {
    budget_cfg: Option<RetryBudgetConfig>,
    breaker_cfg: Option<BreakerConfig>,
    budgets: HashMap<(usize, usize, usize), TokenBucket>,
    breakers: HashMap<(usize, usize, usize), CircuitBreaker>,
}

impl OverloadState {
    /// Fresh state for one run under `cfg`.
    pub fn new(cfg: &OverloadConfig) -> Self {
        Self {
            budget_cfg: cfg.retry_budget,
            breaker_cfg: cfg.breaker,
            budgets: HashMap::new(),
            breakers: HashMap::new(),
        }
    }

    /// Whether the circuit for (tenant, function, node) admits an
    /// attempt at `now`; an open circuit past its `open_ns` transitions
    /// to half-open here and admits the probe. Always true without a
    /// breaker config.
    pub fn breaker_allows(&mut self, tenant: usize, function: usize, node: usize, now: Nanos) -> bool {
        let Some(_cfg) = self.breaker_cfg else { return true };
        self.breakers
            .entry((tenant, function, node))
            .or_insert_with(CircuitBreaker::new)
            .allow(now)
    }

    /// Records one real attempt outcome on the circuit and (on
    /// success) credits the retry budget with the success-coupled
    /// refill.
    pub fn record_attempt(&mut self, tenant: usize, function: usize, node: usize, now: Nanos, ok: bool) {
        if let Some(cfg) = self.breaker_cfg {
            self.breakers
                .entry((tenant, function, node))
                .or_insert_with(CircuitBreaker::new)
                .record(now, ok, &cfg);
        }
        if ok {
            if let Some(cfg) = self.budget_cfg {
                if cfg.per_success_millitokens > 0 {
                    let bucket = self
                        .budgets
                        .entry((tenant, function, node))
                        .or_insert_with(|| TokenBucket::new(&cfg));
                    bucket.refill(now, &cfg);
                    bucket.credit(cfg.per_success_millitokens, cfg.burst_millitokens);
                }
            }
        }
    }

    /// Attempts to spend one retry ([`RETRY_COST_MILLITOKENS`]) from
    /// the (tenant, function, node) bucket at `now`. Always true
    /// without a budget config; false means the edge must give up
    /// instead of retrying.
    pub fn try_spend_retry(&mut self, tenant: usize, function: usize, node: usize, now: Nanos) -> bool {
        let Some(cfg) = self.budget_cfg else { return true };
        let bucket =
            self.budgets.entry((tenant, function, node)).or_insert_with(|| TokenBucket::new(&cfg));
        bucket.refill(now, &cfg);
        bucket.try_spend(RETRY_COST_MILLITOKENS)
    }

    /// Steers placement away from nodes hosting any circuit open at
    /// `now` by adding the configured backlog penalty to their
    /// [`ResourceView`] slice — policies keep their own arithmetic and
    /// simply see the node as deeply backlogged.
    pub fn penalize_view(&self, now: Nanos, view: &mut ResourceView) {
        let Some(cfg) = self.breaker_cfg else { return };
        if self.breakers.is_empty() {
            return;
        }
        for node in 0..view.node_count() {
            // `any` over an unordered map is order-independent, so the
            // unsorted iteration cannot perturb determinism.
            let open = self
                .breakers
                .iter()
                .any(|(&(_, _, n), b)| n == node && b.is_open_at(now));
            if open {
                view.add_backlog_penalty(node, cfg.placement_penalty_ns);
            }
        }
    }

    /// Millitokens currently spendable by (tenant, function, node) —
    /// test/diagnostic surface.
    pub fn budget_level_millitokens(&self, tenant: usize, function: usize, node: usize) -> Option<u64> {
        self.budgets.get(&(tenant, function, node)).map(|b| b.level_millitokens)
    }
}

/// The per-instance control block the load engine threads into the
/// workflow engine: the instance's tenant, its absolute deadline, and
/// the run's shared [`OverloadState`].
#[derive(Debug)]
pub struct OverloadCtl<'a> {
    /// Tenant index of the instance (0 for single-tenant runs).
    pub tenant: usize,
    /// Absolute deadline on the run's timescale (`arrival +
    /// deadline_ns`); `None` disables deadline checks.
    pub deadline_ns: Option<Nanos>,
    /// The run-wide budget/breaker state.
    pub state: &'a mut OverloadState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(rate: u64, burst: u64, per_success: u64) -> RetryBudgetConfig {
        RetryBudgetConfig {
            refill_millitokens_per_s: rate,
            burst_millitokens: burst,
            per_success_millitokens: per_success,
        }
    }

    #[test]
    fn bucket_spends_burst_then_refuses() {
        let cfg = budget(0, 2 * RETRY_COST_MILLITOKENS, 0);
        let mut state = OverloadState::new(&OverloadConfig {
            retry_budget: Some(cfg),
            ..OverloadConfig::default()
        });
        assert!(state.try_spend_retry(0, 1, 0, 100));
        assert!(state.try_spend_retry(0, 1, 0, 200));
        assert!(!state.try_spend_retry(0, 1, 0, 300), "burst exhausted");
        // A different (function, node) key has its own bucket.
        assert!(state.try_spend_retry(0, 2, 0, 300));
    }

    #[test]
    fn bucket_refills_along_virtual_time_with_exact_carry() {
        // 1 token/s = 1000 millitokens/s: after 1 ms, exactly 1
        // millitoken; fractional remainders must carry, not truncate.
        let cfg = budget(1_000, 10 * RETRY_COST_MILLITOKENS, 0);
        let mut bucket = TokenBucket::new(&cfg);
        bucket.level_millitokens = 0;
        // 999 separate 1 µs steps then one more: exactly 1 millitoken
        // per ms in total, no drift from the step pattern.
        for i in 1..=1_000u64 {
            bucket.refill(i * 1_000, &cfg);
        }
        assert_eq!(bucket.level_millitokens, 1);
        let mut one_shot = TokenBucket::new(&cfg);
        one_shot.level_millitokens = 0;
        one_shot.refill(1_000_000, &cfg);
        assert_eq!(one_shot.level_millitokens, 1, "one jump equals many small steps");
    }

    #[test]
    fn success_credit_caps_at_burst() {
        let cfg = budget(0, RETRY_COST_MILLITOKENS, 500);
        let mut state = OverloadState::new(&OverloadConfig {
            retry_budget: Some(cfg),
            ..OverloadConfig::default()
        });
        assert!(state.try_spend_retry(0, 0, 0, 10));
        assert!(!state.try_spend_retry(0, 0, 0, 20));
        // Two successes credit one retry (500 + 500 millitokens).
        state.record_attempt(0, 0, 0, 30, true);
        assert!(!state.try_spend_retry(0, 0, 0, 40));
        state.record_attempt(0, 0, 0, 50, true);
        assert!(state.try_spend_retry(0, 0, 0, 60));
        // Credits never exceed the burst cap.
        for t in 0..100 {
            state.record_attempt(0, 0, 0, 100 + t, true);
        }
        assert_eq!(
            state.budget_level_millitokens(0, 0, 0),
            Some(cfg.burst_millitokens),
            "credit must cap at burst"
        );
    }

    #[test]
    fn breaker_opens_at_the_windowed_rate_and_probes_half_open() {
        let cfg = BreakerConfig {
            window_ns: 1_000,
            failure_rate: (1, 2),
            min_samples: 4,
            open_ns: 5_000,
            half_open_probes: 2,
            placement_penalty_ns: 1 << 20,
        };
        let mut state = OverloadState::new(&OverloadConfig {
            breaker: Some(cfg),
            ..OverloadConfig::default()
        });
        // 2 ok + 1 fail: below min_samples, stays closed.
        state.record_attempt(0, 0, 1, 10, true);
        state.record_attempt(0, 0, 1, 20, true);
        state.record_attempt(0, 0, 1, 30, false);
        assert!(state.breaker_allows(0, 0, 1, 40));
        // A second failure: 2/4 = 50 % ≥ threshold → open.
        state.record_attempt(0, 0, 1, 50, false);
        assert!(!state.breaker_allows(0, 0, 1, 60), "circuit must open at 50%");
        assert!(!state.breaker_allows(0, 0, 1, 5_049));
        // After open_ns the probe is admitted (half-open).
        assert!(state.breaker_allows(0, 0, 1, 5_050));
        // Probe fails → re-opens for another open_ns.
        state.record_attempt(0, 0, 1, 5_060, false);
        assert!(!state.breaker_allows(0, 0, 1, 5_100));
        assert!(state.breaker_allows(0, 0, 1, 10_100));
        // Two probe successes → closed, window reset.
        state.record_attempt(0, 0, 1, 10_200, true);
        state.record_attempt(0, 0, 1, 10_300, true);
        assert!(state.breaker_allows(0, 0, 1, 10_400));
        // One fresh failure does not trip the reset window.
        state.record_attempt(0, 0, 1, 10_500, false);
        assert!(state.breaker_allows(0, 0, 1, 10_600));
    }

    #[test]
    fn breaker_window_rotation_forgets_stale_failures() {
        let cfg = BreakerConfig {
            window_ns: 1_000,
            failure_rate: (1, 2),
            min_samples: 4,
            open_ns: 1_000,
            half_open_probes: 1,
            placement_penalty_ns: 0,
        };
        let mut b = CircuitBreaker::new();
        // Two failures in bucket 0.
        b.record(100, false, &cfg);
        b.record(200, false, &cfg);
        // Two buckets later the failures have aged out entirely: two
        // successes must not trip the 50 % rate.
        b.record(2_500, true, &cfg);
        b.record(2_600, true, &cfg);
        b.record(2_700, true, &cfg);
        b.record(2_800, true, &cfg);
        assert!(b.allow(2_900), "aged-out failures must not open the circuit");
    }

    #[test]
    fn breaker_decisions_replay_identically() {
        let cfg = BreakerConfig::default();
        let drive = || {
            let mut b = CircuitBreaker::new();
            let mut trace = Vec::new();
            let mut t = 0;
            for i in 0..200u64 {
                t += 97 * (1 + i % 7);
                let ok = i % 3 != 0;
                if b.allow(t) {
                    b.record(t, ok, &cfg);
                }
                trace.push((t, b.is_open_at(t)));
            }
            trace
        };
        assert_eq!(drive(), drive(), "breaker must be a pure function of its input history");
    }

    #[test]
    fn default_config_is_off() {
        assert!(OverloadConfig::default().is_off());
        assert!(!OverloadConfig {
            deadline_ns: Some(1),
            ..OverloadConfig::default()
        }
        .is_off());
    }
}
