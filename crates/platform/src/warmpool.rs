//! Deterministic per-(function, node) warm-instance pools.
//!
//! The fig. 2a cold-start model charges a flat instantiation cost the
//! first time a function lands on a node and keeps the pair warm forever
//! — optimistic in steady state and silent about the regime where cold
//! starts actually hurt: bursty ramps, where every arrival in the burst
//! front pays full instantiation exactly when p99 matters. This module
//! is the warm-instance management layer the FaaS keep-alive literature
//! builds (FunLess' warm/cold scheduling, Shahrad et al.'s hybrid
//! histogram policy, Faasta's snapshot restore):
//!
//! * a [`WarmPool`] holds idle instances per (function, node) slot in
//!   **virtual time**; admission takes the most-recently-idle usable
//!   instance (a pool *hit*, free) or instantiates a new one (a *miss*,
//!   paying a cold-start tier on the node's CPU timeline);
//! * misses pay the **full** decode+instantiate cost the first time a
//!   (function, node) pair is ever built and the cheap
//!   **snapshot-restore** tier afterwards (when the pool is configured
//!   with one — the first build leaves a snapshot behind);
//! * completed instances return to the pool and idle there until a
//!   [`KeepAlive`] policy evicts them — a fixed TTL, or the hybrid
//!   histogram-of-reuse-gaps policy that learns each function's idle
//!   distribution and keeps instances just long enough to cover it;
//! * the autoscaler's predictive pre-warming
//!   ([`ensure_target`](WarmPool::ensure_target)) instantiates instances
//!   in the background — off any arrival's critical path — so a ramp
//!   finds warm capacity instead of a cold slab.
//!
//! Everything is deterministic: pools are driven only by virtual-time
//! events (admissions, completions, prewarm decisions), idle entries are
//! scanned in slot order, and eviction is lazy — an expired entry is
//! reaped at the next touch of its slot, with its idle time credited up
//! to its virtual deadline, so re-running a workload replays the exact
//! same hit/miss/eviction sequence.

use std::collections::{HashMap, HashSet};

use roadrunner_vkernel::sched::SchedResources;
use roadrunner_vkernel::Nanos;

/// How the load engine admits instances: the optional fig. 2a cold-start
/// cost and the optional warm pool managing it.
///
/// This is the one admission knob [`OpenLoop`](crate::OpenLoop) and
/// [`ClosedLoop`](crate::ClosedLoop) share (it used to be a
/// `cold_start_ns` field copy-pasted across both):
///
/// * [`AdmissionConfig::warm`] — every instance admits warm (no cold
///   starts at all);
/// * [`AdmissionConfig::cold`] — the legacy warm-*set* model: each
///   (function, node) pair pays the flat cost on its first landing and
///   stays warm for the rest of the run;
/// * [`AdmissionConfig::pooled`] — the full warm-pool model of this
///   module: per-instance hits and misses, cost tiers, keep-alive
///   eviction and (with a prewarm-configured autoscaler) predictive
///   pre-warming.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Full cold-start (decode + instantiate) cost charged on the
    /// node's CPU timeline when an instance must be built; `None`
    /// admits everything warm (and disables the pool — a pool of
    /// zero-cost instances would be indistinguishable from warm
    /// admission).
    pub cold_start_ns: Option<Nanos>,
    /// Warm-pool configuration; `None` keeps the legacy warm-set model.
    pub pool: Option<WarmPoolConfig>,
}

impl AdmissionConfig {
    /// Every instance admits warm — no cold-start accounting at all.
    pub fn warm() -> Self {
        Self { cold_start_ns: None, pool: None }
    }

    /// The legacy fig. 2a warm-set model: each (function, node) pair
    /// pays `cold_start_ns` once, on its first landing, and stays warm
    /// for the rest of the run.
    pub fn cold(cold_start_ns: Nanos) -> Self {
        Self { cold_start_ns: Some(cold_start_ns), pool: None }
    }

    /// Warm-pool admission: misses pay `cold_start_ns` (or the pool's
    /// snapshot-restore tier once a snapshot exists), hits admit free,
    /// and `pool`'s keep-alive policy evicts idle instances.
    pub fn pooled(cold_start_ns: Nanos, pool: WarmPoolConfig) -> Self {
        Self { cold_start_ns: Some(cold_start_ns), pool: Some(pool) }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self::warm()
    }
}

/// Configuration of a [`WarmPool`].
#[derive(Debug, Clone, PartialEq)]
pub struct WarmPoolConfig {
    /// Snapshot-restore cost tier: once a (function, node) pair has been
    /// built in full, later misses restore from the snapshot at this
    /// (much cheaper) cost instead of re-paying the full build. `None`
    /// disables the tier — every miss pays the full cost, the flat
    /// fig. 2a model applied per admission.
    pub restore_ns: Option<Nanos>,
    /// The keep-alive (eviction) policy idle instances live under.
    pub keep_alive: KeepAlive,
    /// At most this many idle instances are kept per (function, node)
    /// slot on the return path; returning one beyond the cap evicts the
    /// oldest. (Pre-warming may intentionally exceed the cap.)
    pub max_idle_per_slot: usize,
}

impl Default for WarmPoolConfig {
    fn default() -> Self {
        Self { restore_ns: None, keep_alive: KeepAlive::None, max_idle_per_slot: 8 }
    }
}

/// Keep-alive policy: how long an idle instance survives in the pool.
///
/// An instance idle since `s` is usable at `now` iff `now - s < ttl`
/// and evicted once `now - s >= ttl` (lazily, at the next touch of its
/// slot, with idle time credited up to the virtual deadline `s + ttl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepAlive {
    /// TTL 0: nothing is ever kept warm — every admission is a miss.
    /// This is the "no pool" baseline expressed inside the pool model
    /// (and must behave field-for-field like `FixedTtl { ttl_ns: 0 }`).
    None,
    /// Every function's idle instances live exactly `ttl_ns`.
    FixedTtl {
        /// The fixed idle lifetime.
        ttl_ns: Nanos,
    },
    /// The hybrid histogram policy (Shahrad et al., ATC '20): each
    /// function's observed reuse gaps feed a log₂-binned histogram, and
    /// the TTL tracks twice the 99th-percentile bin's upper edge —
    /// long enough to cover nearly every observed gap, no longer. With
    /// no observations yet the policy is optimistic (`max_ttl_ns`), so
    /// the first reuse can be observed at all.
    Hybrid {
        /// Floor for the learned TTL.
        min_ttl_ns: Nanos,
        /// Ceiling for the learned TTL (and the cold-history default).
        max_ttl_ns: Nanos,
    },
}

/// Pool accounting for one load run, attached to
/// [`LoadRun::pool`](crate::LoadRun::pool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Admissions served by an idle pooled instance (no cold cost).
    pub hits: u64,
    /// Admissions that had to instantiate (full or restore tier).
    pub misses: u64,
    /// The subset of `misses` (plus prewarms) served by the
    /// snapshot-restore tier rather than a full build.
    pub restores: u64,
    /// Instances returned to the pool on completion.
    pub returns: u64,
    /// Idle instances torn down (TTL expiry, slot-cap overflow, or a
    /// scaled-in/killed node taking its pool down with it).
    pub evictions: u64,
    /// Instances instantiated ahead of demand by predictive prewarming.
    pub prewarms: u64,
    /// CPU time spent on prewarm instantiations (background, off every
    /// arrival's critical path).
    pub prewarm_ns: Nanos,
    /// Total virtual idle time instances spent sitting in the pool —
    /// the memory-residency cost of the keep-alive policy.
    pub idle_ns: u128,
    /// Instances still warm when the run ended.
    pub warm_at_end: u64,
}

/// What one admission cost: the instance's release time and its
/// per-function hit/miss split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted {
    /// When the instance's edges may start (arrival plus the slowest
    /// cold instantiation among its misses).
    pub release_ns: Nanos,
    /// Functions served from the pool.
    pub hits: u32,
    /// Functions that had to instantiate.
    pub misses: u32,
}

/// Log₂-binned histogram of one function's reuse gaps (the hybrid
/// keep-alive policy's memory).
#[derive(Debug, Clone)]
struct IdleHistogram {
    /// `bins[b]` counts gaps in `[2^b, 2^(b+1))` (gap 0 lands in bin 0).
    bins: [u64; 64],
    total: u64,
}

impl Default for IdleHistogram {
    fn default() -> Self {
        Self { bins: [0; 64], total: 0 }
    }
}

impl IdleHistogram {
    fn record(&mut self, gap_ns: Nanos) {
        let bin = 63 - gap_ns.max(1).leading_zeros() as usize;
        self.bins[bin] += 1;
        self.total += 1;
    }

    /// TTL covering ~99 % of observed gaps with 2× margin, clamped to
    /// `[min, max]`; `max` (optimistic) while the histogram is empty.
    fn ttl(&self, min: Nanos, max: Nanos) -> Nanos {
        if self.total == 0 {
            return max;
        }
        let rank = self.total - self.total / 100;
        let mut cum = 0u64;
        for (bin, &count) in self.bins.iter().enumerate() {
            cum += count;
            if cum >= rank {
                // Upper edge of bin b is 2^(b+1); double it for margin.
                return (1u64 << (bin + 2).min(62)).clamp(min, max);
            }
        }
        max
    }
}

/// A deterministic warm-instance pool over the cluster's (function,
/// node) slots. See the module docs for the model; the load engine owns
/// one per pooled run and drives it at every admission, completion and
/// prewarm decision.
#[derive(Debug)]
pub struct WarmPool {
    cold_ns: Nanos,
    cfg: WarmPoolConfig,
    functions: usize,
    /// Idle-since timestamps per (function index, node index). An entry
    /// with a *future* timestamp is a prewarm still instantiating — not
    /// yet usable, not yet aging.
    slots: HashMap<(usize, usize), Vec<Nanos>>,
    /// (function, node) pairs that have paid the full build at least
    /// once — later misses restore from the snapshot (when the tier is
    /// configured).
    snapshots: HashSet<(usize, usize)>,
    /// Per-function reuse-gap histograms (hybrid keep-alive only).
    hists: Vec<IdleHistogram>,
    /// Round-robin node cursor spreading prewarm instantiations.
    prewarm_cursor: usize,
    stats: PoolStats,
}

impl WarmPool {
    /// A fresh pool for a workflow of `functions` functions whose full
    /// cold build costs `cold_ns`.
    pub fn new(cold_ns: Nanos, cfg: WarmPoolConfig, functions: usize) -> Self {
        Self {
            cold_ns,
            cfg,
            functions,
            slots: HashMap::new(),
            snapshots: HashSet::new(),
            hists: vec![IdleHistogram::default(); functions],
            prewarm_cursor: 0,
            stats: PoolStats::default(),
        }
    }

    /// The current TTL of `function`'s idle instances.
    pub fn ttl_ns(&self, function: usize) -> Nanos {
        match self.cfg.keep_alive {
            KeepAlive::None => 0,
            KeepAlive::FixedTtl { ttl_ns } => ttl_ns,
            KeepAlive::Hybrid { min_ttl_ns, max_ttl_ns } => {
                self.hists[function].ttl(min_ttl_ns, max_ttl_ns)
            }
        }
    }

    /// Accounting so far (without the end-of-run flush
    /// [`finalize`](Self::finalize) adds).
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Admits one instance placed per `assignment` at `now`: each
    /// function takes the most-recently-idle usable instance from its
    /// slot or instantiates on the node's CPU timeline, delaying the
    /// instance's release past the slowest miss.
    pub fn admit(
        &mut self,
        now: Nanos,
        assignment: &[usize],
        resources: &mut SchedResources,
    ) -> Admitted {
        let mut release = now;
        let mut hits = 0u32;
        let mut misses = 0u32;
        for (fi, &node) in assignment.iter().enumerate() {
            let ttl = self.ttl_ns(fi);
            let slot = self.slots.entry((fi, node)).or_default();
            expire_slot(slot, now, ttl, &mut self.stats);
            // Most-recently-idle first (LIFO): the entry with the best
            // chance of staying warm for the *next* arrival is the one
            // left behind, and the measured reuse gap feeding the
            // hybrid histogram is the tightest one.
            let best = slot
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s <= now)
                .max_by_key(|&(_, &s)| s)
                .map(|(i, _)| i);
            match best {
                Some(i) => {
                    let idle_since = slot.remove(i);
                    let gap = now - idle_since;
                    if matches!(self.cfg.keep_alive, KeepAlive::Hybrid { .. }) {
                        self.hists[fi].record(gap);
                    }
                    self.stats.idle_ns += u128::from(gap);
                    self.stats.hits += 1;
                    hits += 1;
                }
                None => {
                    let cost = self.instantiation_cost(fi, node);
                    if cost > 0 {
                        let start = resources.cpu(node).reserve(now, cost);
                        release = release.max(start + cost);
                    }
                    self.stats.misses += 1;
                    misses += 1;
                }
            }
        }
        Admitted { release_ns: release, hits, misses }
    }

    /// Returns a completed instance's functions to their slots at
    /// `finish`, evicting past the per-slot idle cap.
    pub fn complete(&mut self, finish: Nanos, assignment: &[usize]) {
        let cap = self.cfg.max_idle_per_slot.max(1);
        for (fi, &node) in assignment.iter().enumerate() {
            let ttl = self.ttl_ns(fi);
            let slot = self.slots.entry((fi, node)).or_default();
            expire_slot(slot, finish, ttl, &mut self.stats);
            slot.push(finish);
            self.stats.returns += 1;
            if slot.len() > cap {
                let oldest = slot
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &s)| s)
                    .map(|(i, _)| i)
                    .expect("slot over cap is non-empty");
                let s = slot.remove(oldest);
                self.stats.idle_ns += u128::from(finish.saturating_sub(s));
                self.stats.evictions += 1;
            }
        }
    }

    /// Predictive pre-warming: tops every function's warm capacity
    /// (idle + in-flight instances) up to `target` by instantiating in
    /// the background — reserved on node CPU timelines *now*, usable
    /// when the instantiation finishes, never on an arrival's critical
    /// path. New instances spread round-robin across the active nodes.
    pub fn ensure_target(
        &mut self,
        now: Nanos,
        target: usize,
        in_flight: usize,
        resources: &mut SchedResources,
    ) {
        let nodes = resources.node_count();
        if nodes == 0 {
            return;
        }
        for fi in 0..self.functions {
            let ttl = self.ttl_ns(fi);
            let mut have = in_flight;
            for node in 0..nodes {
                if let Some(slot) = self.slots.get_mut(&(fi, node)) {
                    expire_slot(slot, now, ttl, &mut self.stats);
                    have += slot.len();
                }
            }
            // `max_idle_per_slot` bounds staffing the same way it bounds
            // returns: an over-eager target cannot flood the cluster with
            // more background instantiation than the pool could retain.
            let capacity: usize = (0..nodes)
                .map(|node| {
                    let held = self.slots.get(&(fi, node)).map_or(0, Vec::len);
                    self.cfg.max_idle_per_slot.saturating_sub(held)
                })
                .sum();
            for _ in 0..target.saturating_sub(have).min(capacity) {
                let mut node = self.prewarm_cursor % nodes;
                self.prewarm_cursor += 1;
                while self.slots.get(&(fi, node)).map_or(0, Vec::len)
                    >= self.cfg.max_idle_per_slot
                {
                    node = self.prewarm_cursor % nodes;
                    self.prewarm_cursor += 1;
                }
                let cost = self.instantiation_cost(fi, node);
                let ready = if cost > 0 {
                    let start = resources.cpu(node).reserve(now, cost);
                    start + cost
                } else {
                    now
                };
                self.slots.entry((fi, node)).or_default().push(ready);
                self.stats.prewarms += 1;
                self.stats.prewarm_ns += cost;
            }
        }
    }

    /// The cost of building one instance of `function` on `node` right
    /// now: the full build the first time ever, the snapshot-restore
    /// tier afterwards (when configured). Records the snapshot and the
    /// restore count as a side effect.
    fn instantiation_cost(&mut self, function: usize, node: usize) -> Nanos {
        let first_build = self.snapshots.insert((function, node));
        if first_build {
            self.cold_ns
        } else {
            match self.cfg.restore_ns {
                Some(restore) => {
                    self.stats.restores += 1;
                    restore
                }
                None => self.cold_ns,
            }
        }
    }

    /// Scale-in to `nodes`: pools (and snapshots) on removed nodes die
    /// with them — a re-added index is a brand-new machine.
    pub fn shrink_to(&mut self, nodes: usize, now: Nanos) {
        let stats = &mut self.stats;
        self.slots.retain(|&(_, node), slot| {
            if node >= nodes {
                for &s in slot.iter() {
                    stats.idle_ns += u128::from(now.saturating_sub(s));
                    stats.evictions += 1;
                }
                false
            } else {
                true
            }
        });
        self.snapshots.retain(|&(_, node)| node < nodes);
    }

    /// A killed node `victim` leaves the cluster: its pool dies, and
    /// slots above it shift down one index (mirroring the resource
    /// mesh's reindexing).
    pub fn remove_node(&mut self, victim: usize, now: Nanos) {
        let mut slots = HashMap::with_capacity(self.slots.len());
        for ((fi, node), slot) in self.slots.drain() {
            match node.cmp(&victim) {
                std::cmp::Ordering::Less => {
                    slots.insert((fi, node), slot);
                }
                std::cmp::Ordering::Equal => {
                    for &s in &slot {
                        self.stats.idle_ns += u128::from(now.saturating_sub(s));
                        self.stats.evictions += 1;
                    }
                }
                std::cmp::Ordering::Greater => {
                    slots.insert((fi, node - 1), slot);
                }
            }
        }
        self.slots = slots;
        self.snapshots = self
            .snapshots
            .iter()
            .filter_map(|&(fi, node)| match node.cmp(&victim) {
                std::cmp::Ordering::Less => Some((fi, node)),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some((fi, node - 1)),
            })
            .collect();
    }

    /// End-of-run flush at horizon `end`: entries whose TTL deadline
    /// passed count as evictions (idle credited to the deadline), the
    /// rest as still-warm (idle credited to the horizon). Consumes the
    /// pool and returns the final accounting.
    pub fn finalize(mut self, end: Nanos) -> PoolStats {
        for (&(fi, _), slot) in &self.slots {
            let ttl = self.ttl_ns(fi);
            for &s in slot {
                if s.saturating_add(ttl) <= end {
                    self.stats.evictions += 1;
                    self.stats.idle_ns += u128::from(ttl);
                } else {
                    self.stats.warm_at_end += 1;
                    self.stats.idle_ns += u128::from(end.saturating_sub(s));
                }
            }
        }
        self.stats
    }
}

/// Lazy eviction: reaps entries whose TTL deadline has passed at `now`,
/// crediting each the idle time it would have accrued by its deadline.
/// Entries with future timestamps (prewarms still instantiating) are
/// never expired here.
fn expire_slot(slot: &mut Vec<Nanos>, now: Nanos, ttl: Nanos, stats: &mut PoolStats) {
    slot.retain(|&s| {
        let dead = s <= now && now - s >= ttl;
        if dead {
            stats.evictions += 1;
            stats.idle_ns += u128::from(ttl);
        }
        !dead
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(nodes: usize) -> SchedResources {
        let shapes = vec![4u32; nodes];
        SchedResources::mesh(&shapes)
    }

    #[test]
    fn first_miss_pays_full_then_restores_from_snapshot() {
        let cfg = WarmPoolConfig {
            restore_ns: Some(50),
            keep_alive: KeepAlive::None,
            ..WarmPoolConfig::default()
        };
        let mut pool = WarmPool::new(1_000, cfg, 1);
        let mut r = res(1);
        let a = pool.admit(0, &[0], &mut r);
        assert_eq!((a.hits, a.misses), (0, 1));
        assert_eq!(a.release_ns, 1_000, "first build pays the full tier");
        // KeepAlive::None: nothing returns usable, but the snapshot
        // persists — the second miss restores.
        let b = pool.admit(10_000, &[0], &mut r);
        assert_eq!(b.misses, 1);
        assert_eq!(b.release_ns, 10_050, "second build restores from snapshot");
        assert_eq!(pool.stats().restores, 1);
    }

    #[test]
    fn ttl_zero_never_hits_and_none_matches_fixed_ttl_zero() {
        for keep in [KeepAlive::None, KeepAlive::FixedTtl { ttl_ns: 0 }] {
            let cfg = WarmPoolConfig { keep_alive: keep, ..WarmPoolConfig::default() };
            let mut pool = WarmPool::new(100, cfg, 1);
            let mut r = res(1);
            for k in 0..4u64 {
                let at = k * 10_000;
                let adm = pool.admit(at, &[0], &mut r);
                assert_eq!(adm.hits, 0, "{keep:?}: ttl 0 never serves warm");
                pool.complete(at + 500, &[0]);
            }
            let stats = pool.finalize(100_000);
            assert_eq!(stats.misses, 4);
            assert_eq!(stats.returns, 4);
            assert_eq!(stats.evictions, 4, "every returned instance dies");
            assert_eq!(stats.warm_at_end, 0);
            assert_eq!(stats.idle_ns, 0, "ttl 0 accrues no idle residency");
        }
    }

    #[test]
    fn fixed_ttl_hits_inside_the_window_and_evicts_past_it() {
        let cfg = WarmPoolConfig {
            keep_alive: KeepAlive::FixedTtl { ttl_ns: 1_000 },
            ..WarmPoolConfig::default()
        };
        let mut pool = WarmPool::new(100, cfg, 1);
        let mut r = res(1);
        pool.admit(0, &[0], &mut r);
        pool.complete(200, &[0]);
        // 600 ns idle < ttl: hit, free, instant release.
        let hit = pool.admit(800, &[0], &mut r);
        assert_eq!((hit.hits, hit.misses), (1, 0));
        assert_eq!(hit.release_ns, 800);
        pool.complete(900, &[0]);
        // 1 900 ns later: expired — miss, eviction recorded.
        let miss = pool.admit(2_800, &[0], &mut r);
        assert_eq!((miss.hits, miss.misses), (0, 1));
        let stats = pool.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.idle_ns, 600 + 1_000, "hit gap + evicted entry's full ttl");
    }

    #[test]
    fn hybrid_defaults_to_max_then_learns_the_observed_gap() {
        let keep = KeepAlive::Hybrid { min_ttl_ns: 16, max_ttl_ns: 1 << 40 };
        let cfg = WarmPoolConfig { keep_alive: keep, ..WarmPoolConfig::default() };
        let mut pool = WarmPool::new(100, cfg, 1);
        assert_eq!(pool.ttl_ns(0), 1 << 40, "no history: optimistic");
        let mut r = res(1);
        let mut at = 0;
        for _ in 0..20 {
            pool.admit(at, &[0], &mut r);
            pool.complete(at + 100, &[0]);
            at += 1_100; // reuse gap: 1 000 ns
        }
        let ttl = pool.ttl_ns(0);
        // Gap 1 000 lands in bin 9 ([512, 1024)); ttl = 2^11 = 2 048.
        assert_eq!(ttl, 2_048, "learned ttl covers the observed gap with margin");
        assert!(pool.stats().hits >= 19, "optimistic default lets every reuse hit");
    }

    #[test]
    fn slot_cap_evicts_the_oldest_on_return() {
        let cfg = WarmPoolConfig {
            keep_alive: KeepAlive::FixedTtl { ttl_ns: Nanos::MAX },
            max_idle_per_slot: 2,
            ..WarmPoolConfig::default()
        };
        let mut pool = WarmPool::new(100, cfg, 1);
        // Three returns into a cap-2 slot: the first (oldest) goes.
        pool.complete(10, &[0]);
        pool.complete(20, &[0]);
        pool.complete(30, &[0]);
        let stats = pool.stats();
        assert_eq!(stats.returns, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.idle_ns, 20, "the t=10 entry idled 20 ns before eviction");
    }

    #[test]
    fn prewarmed_instances_become_usable_when_instantiation_finishes() {
        let cfg = WarmPoolConfig {
            keep_alive: KeepAlive::FixedTtl { ttl_ns: Nanos::MAX },
            ..WarmPoolConfig::default()
        };
        let mut pool = WarmPool::new(1_000, cfg, 1);
        let mut r = res(2);
        pool.ensure_target(0, 2, 0, &mut r);
        assert_eq!(pool.stats().prewarms, 2);
        assert_eq!(pool.stats().prewarm_ns, 2_000);
        // Still instantiating at t=500: a miss (paying again — here the
        // full tier, no restore configured).
        let early = pool.admit(500, &[0], &mut r);
        assert_eq!(early.misses, 1);
        // Ready at t=1 000: the next arrival hits.
        let late = pool.admit(1_500, &[0], &mut r);
        assert_eq!((late.hits, late.misses), (1, 0));
        assert_eq!(late.release_ns, 1_500);
    }

    #[test]
    fn ensure_target_counts_in_flight_and_tops_up_only_the_gap() {
        let cfg = WarmPoolConfig {
            keep_alive: KeepAlive::FixedTtl { ttl_ns: Nanos::MAX },
            ..WarmPoolConfig::default()
        };
        let mut pool = WarmPool::new(100, cfg, 1);
        let mut r = res(1);
        pool.complete(0, &[0]); // one idle instance
        pool.ensure_target(10, 4, 2, &mut r); // 1 idle + 2 busy: need 1
        assert_eq!(pool.stats().prewarms, 1);
        pool.ensure_target(11, 4, 2, &mut r); // satisfied: no-op
        assert_eq!(pool.stats().prewarms, 1);
    }

    #[test]
    fn node_removal_drops_the_victims_pool_and_reindexes_survivors() {
        let cfg = WarmPoolConfig {
            keep_alive: KeepAlive::FixedTtl { ttl_ns: Nanos::MAX },
            restore_ns: Some(10),
            ..WarmPoolConfig::default()
        };
        let mut pool = WarmPool::new(100, cfg, 1);
        let mut r = res(3);
        // Warm one instance on each of nodes 1 and 2.
        pool.admit(0, &[1], &mut r);
        pool.complete(10, &[1]);
        pool.admit(0, &[2], &mut r);
        pool.complete(10, &[2]);
        pool.remove_node(1, 20);
        let stats = pool.stats();
        assert_eq!(stats.evictions, 1, "node 1's idle instance died with it");
        // Old node 2 is now node 1 — still warm, snapshot intact.
        let hit = pool.admit(30, &[1], &mut r);
        assert_eq!(hit.hits, 1);
        // Old node 1's slot is gone at its new home too: a fresh index
        // is a fresh machine paying the *full* build, not a restore.
        let restores_before = pool.stats().restores;
        let miss = pool.admit(30, &[2], &mut r);
        assert_eq!(miss.misses, 1);
        assert_eq!(pool.stats().restores, restores_before, "fresh machine: full build");
    }

    #[test]
    fn conservation_hits_plus_misses_equals_admissions() {
        let cfg = WarmPoolConfig {
            keep_alive: KeepAlive::FixedTtl { ttl_ns: 700 },
            restore_ns: Some(5),
            ..WarmPoolConfig::default()
        };
        let mut pool = WarmPool::new(50, cfg, 2);
        let mut r = res(2);
        let mut admissions = 0u64;
        for k in 0..50u64 {
            let at = k * 333;
            let assignment = [(k % 2) as usize, ((k + 1) % 2) as usize];
            pool.admit(at, &assignment, &mut r);
            admissions += 2;
            pool.complete(at + 100, &assignment);
        }
        let stats = pool.finalize(60_000);
        assert_eq!(stats.hits + stats.misses, admissions);
        assert!(stats.evictions <= stats.returns + stats.prewarms);
        assert_eq!(stats.returns + stats.prewarms, stats.evictions + stats.warm_at_end
            + stats.hits);
    }
}
