//! Parallel sweep engine: fan independent grid points out over a
//! scoped-thread worker pool, merge results in deterministic grid order.
//!
//! Every (rate × payload × policy × seed) point in a load sweep is an
//! independent virtual-time simulation: it owns its clock, its
//! [`SchedResources`](roadrunner_vkernel::SchedResources), its data
//! plane. Cores are therefore pure headroom — the only thing a worker
//! pool must preserve is *output order*. This module guarantees it
//! structurally: results land in a slot indexed by the job's grid
//! position, so the merged vector is identical whatever the completion
//! interleaving. Combined with per-worker resource construction (no
//! shared mutable simulation state), parallel output is byte-identical
//! to the serial loop — a property the test harness
//! (`tests/sweep_determinism.rs`, `crates/bench/tests/sweep_golden.rs`)
//! proves rather than assumes.
//!
//! ```
//! use roadrunner_platform::sweep::{run_jobs, SweepMode};
//!
//! let jobs: Vec<u64> = (0..8).collect();
//! let serial = run_jobs(&jobs, SweepMode::Serial, |&j| j * j);
//! let parallel = run_jobs(&jobs, SweepMode::Parallel { workers: 4 }, |&j| j * j);
//! assert_eq!(serial, parallel);
//! ```

use parking_lot::Mutex;

/// How a sweep executes its jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// One job at a time, in grid order, on the calling thread — the
    /// byte-identity reference.
    Serial,
    /// Up to `workers` scoped threads pulling jobs from a shared
    /// counter. `workers` is clamped to `max(1, min(workers, jobs))`.
    Parallel {
        /// Requested worker-thread count.
        workers: usize,
    },
}

impl SweepMode {
    /// Parallel mode with one worker per available core.
    pub fn parallel_auto() -> Self {
        SweepMode::Parallel { workers: available_workers() }
    }
}

/// Number of cores the OS reports as available to this process
/// (`std::thread::available_parallelism`), falling back to 1.
pub fn available_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over every job and returns the results **in job order**,
/// regardless of completion order.
///
/// `workers` is clamped to `[1, jobs.len()]`; with one worker (or one
/// job) no threads are spawned and the jobs run inline, serially. With
/// more, `std::thread::scope` workers pull job indices from a shared
/// counter and deposit each result into the slot for its index — the
/// merge is positional, so scheduling nondeterminism cannot reorder
/// output. An empty job list yields an empty vector (never panics).
///
/// Panics in `f` propagate when the scope joins, as with any scoped
/// thread.
pub fn parallel_map<J, R, F>(jobs: &[J], workers: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = {
                    let mut guard = next.lock();
                    let i = *guard;
                    if i >= n {
                        break;
                    }
                    *guard += 1;
                    i
                };
                let r = f(i, &jobs[i]);
                results.lock()[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("worker pool completed every job"))
        .collect()
}

/// Runs every job under `mode` and returns results in job order.
///
/// The serial path is a plain in-order loop on the calling thread; the
/// parallel path is [`parallel_map`]. Both produce the same vector for
/// any deterministic `f` — the contract the determinism harness checks
/// byte-for-byte.
pub fn run_jobs<J, R, F>(jobs: &[J], mode: SweepMode, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    match mode {
        SweepMode::Serial => jobs.iter().map(&f).collect(),
        SweepMode::Parallel { workers } => parallel_map(jobs, workers, |_, j| f(j)),
    }
}

/// A declarative sweep grid: the cross product of offered rates,
/// payload sizes, placement policies and arrival seeds.
///
/// [`SweepGrid::points`] enumerates the product in a fixed canonical
/// order — policy (outermost), then payload, then rate, then seed
/// (innermost) — so the `seeds.len()` replicas of one experimental cell
/// are consecutive and [`chunk the result
/// vector`](SweepGrid::seeds_per_cell) directly into replication
/// groups. Any empty axis makes the whole grid empty: zero points, zero
/// results, never a panic or a NaN — the same contract an empty
/// [`LoadRun`](crate::loadgen::LoadRun) honors.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Offered-rate multipliers (interpretation is the caller's; the
    /// grid only enumerates them).
    pub rates: Vec<f64>,
    /// Payload sizes in bytes.
    pub payload_bytes: Vec<usize>,
    /// Placement-policy names.
    pub policies: Vec<String>,
    /// Arrival-process seeds — the replication axis.
    pub seeds: Vec<u64>,
}

/// One point of a [`SweepGrid`]: the axis values plus both the flat
/// job index and the per-axis indices, so workers can label output
/// without recomputing positions.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Flat index in canonical grid order (also the merge slot).
    pub index: usize,
    /// Offered-rate multiplier.
    pub rate: f64,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Placement-policy name.
    pub policy: String,
    /// Arrival seed.
    pub seed: u64,
    /// Index into [`SweepGrid::policies`].
    pub policy_index: usize,
    /// Index into [`SweepGrid::payload_bytes`].
    pub payload_index: usize,
    /// Index into [`SweepGrid::rates`].
    pub rate_index: usize,
    /// Index into [`SweepGrid::seeds`].
    pub seed_index: usize,
}

impl SweepGrid {
    /// Total number of grid points (product of axis lengths; zero if
    /// any axis is empty).
    pub fn len(&self) -> usize {
        self.policies.len() * self.payload_bytes.len() * self.rates.len() * self.seeds.len()
    }

    /// Whether the grid has no points (at least one empty axis).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of consecutive points forming one experimental cell — the
    /// seed replicas of a (policy, payload, rate) combination.
    pub fn seeds_per_cell(&self) -> usize {
        self.seeds.len()
    }

    /// All grid points in canonical order: policy → payload → rate →
    /// seed, seed varying fastest.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut out = Vec::with_capacity(self.len());
        for (policy_index, policy) in self.policies.iter().enumerate() {
            for (payload_index, &payload_bytes) in self.payload_bytes.iter().enumerate() {
                for (rate_index, &rate) in self.rates.iter().enumerate() {
                    for (seed_index, &seed) in self.seeds.iter().enumerate() {
                        out.push(SweepPoint {
                            index: out.len(),
                            rate,
                            payload_bytes,
                            policy: policy.clone(),
                            seed,
                            policy_index,
                            payload_index,
                            rate_index,
                            seed_index,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Sweeps the grid: runs `run` at every point under `mode`, returning
/// results in canonical grid order. An empty grid returns an empty
/// vector without invoking `run`.
pub fn sweep<R, F>(grid: &SweepGrid, mode: SweepMode, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(&SweepPoint) -> R + Sync,
{
    run_jobs(&grid.points(), mode, run)
}

/// A condvar-based gate used by the tests to force out-of-order job
/// completion: job 0 blocks until the last job has finished, proving
/// the merge is positional rather than completion-ordered.
#[doc(hidden)]
pub struct CompletionGate {
    done: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl CompletionGate {
    #[doc(hidden)]
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { done: std::sync::Mutex::new(false), cv: std::sync::Condvar::new() }
    }

    #[doc(hidden)]
    pub fn open(&self) {
        *self.done.lock().unwrap() = true;
        self.cv.notify_all();
    }

    #[doc(hidden)]
    pub fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.cv.wait(done).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid {
            rates: vec![0.5, 1.0],
            payload_bytes: vec![1024, 65536],
            policies: vec!["locality".into(), "spread".into()],
            seeds: vec![1, 2, 3],
        }
    }

    #[test]
    fn points_enumerate_in_canonical_order() {
        let g = grid();
        let pts = g.points();
        assert_eq!(pts.len(), g.len());
        assert_eq!(g.len(), 2 * 2 * 2 * 3);
        assert_eq!(g.seeds_per_cell(), 3);
        // Seed varies fastest, then rate, then payload, then policy.
        assert_eq!((pts[0].policy.as_str(), pts[0].payload_bytes, pts[0].rate, pts[0].seed),
                   ("locality", 1024, 0.5, 1));
        assert_eq!(pts[1].seed, 2);
        assert_eq!(pts[2].seed, 3);
        assert_eq!(pts[3].rate, 1.0);
        assert_eq!(pts[6].payload_bytes, 65536);
        assert_eq!(pts[12].policy, "spread");
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn empty_axis_yields_empty_grid_not_a_panic() {
        for empty in 0..4 {
            let mut g = grid();
            match empty {
                0 => g.rates.clear(),
                1 => g.payload_bytes.clear(),
                2 => g.policies.clear(),
                _ => g.seeds.clear(),
            }
            assert!(g.is_empty());
            assert_eq!(g.len(), 0);
            assert!(g.points().is_empty());
            let ran = Mutex::new(0usize);
            let results = sweep(&g, SweepMode::parallel_auto(), |_| {
                *ran.lock() += 1;
            });
            assert!(results.is_empty());
            assert_eq!(*ran.lock(), 0, "run must not be invoked on an empty grid");
        }
    }

    #[test]
    fn parallel_matches_serial_across_worker_counts() {
        let g = grid();
        let run = |p: &SweepPoint| {
            format!("{}/{}/{}/{}/{}", p.index, p.policy, p.payload_bytes, p.rate, p.seed)
        };
        let serial = sweep(&g, SweepMode::Serial, run);
        for workers in [1, 2, 4, 32] {
            let parallel = sweep(&g, SweepMode::Parallel { workers }, run);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn merge_order_is_positional_even_when_job_zero_finishes_last() {
        // Two workers: job 0 blocks on a gate the final job opens, so
        // it *must* complete last; the merged output is grid order
        // regardless.
        let jobs: Vec<usize> = (0..6).collect();
        let gate = CompletionGate::new();
        let out = parallel_map(&jobs, 2, |i, &j| {
            assert_eq!(i, j);
            if i == 0 {
                gate.wait();
            } else if i == jobs.len() - 1 {
                gate.open();
            }
            j * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn worker_counts_clamp_to_job_count() {
        let jobs = [1u64, 2, 3];
        assert_eq!(parallel_map(&jobs, 0, |_, &j| j + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(&jobs, 100, |_, &j| j + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map::<u64, u64, _>(&[], 4, |_, &j| j), Vec::<u64>::new());
    }

    #[test]
    fn run_jobs_serial_and_parallel_agree() {
        let jobs: Vec<u64> = (0..17).collect();
        let serial = run_jobs(&jobs, SweepMode::Serial, |&j| j.wrapping_mul(2654435761));
        let parallel =
            run_jobs(&jobs, SweepMode::Parallel { workers: 4 }, |&j| j.wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
        if let SweepMode::Parallel { workers } = SweepMode::parallel_auto() {
            assert!(workers >= 1);
        } else {
            panic!("parallel_auto must be parallel");
        }
    }
}
