//! Workflow specifications and the execution engines.
//!
//! The paper evaluates the "most common invocation patterns" —
//! sequential chains, fan-out and fan-in (§6.1, citing the Berkeley
//! view). This module generalizes those shapes into arbitrary DAGs
//! ([`WorkflowDag`]): a [`WorkflowSpec`] names the graph, and two engines
//! drive the transfers through whatever [`DataPlane`] the embedder
//! provides (Roadrunner's shim modes, or a baseline's HTTP path):
//!
//! * [`execute`] — the serial engine: edges run one after another in
//!   virtual time, each timed from the shared clock. Deterministic and
//!   exactly what the paper's single-edge figures measure.
//! * [`execute_concurrent`] — the discrete-event engine: independent
//!   edges overlap in virtual time while per-resource timelines
//!   ([`roadrunner_vkernel::sched`]) serialize contended cores and the
//!   shared link. Its makespan is bounded below by the DAG's critical
//!   path ([`critical_path_ns`]) and above by the serial total.
//!
//! Both engines have compiled fast paths — [`execute_compiled`] /
//! [`execute_compiled_at`] over a [`CompiledWorkflow`] — that hoist
//! validation, topological sorting and fan-in derivation out of the per-
//! execution loop; the plain entry points compile on the fly and
//! delegate. Load generators admitting thousands of instances of one
//! spec compile once and reuse.

use bytes::Bytes;
use roadrunner_vkernel::sched::{EventQueue, SchedResources};
use roadrunner_vkernel::{Nanos, VirtualClock};

use crate::dag::WorkflowDag;
use crate::error::PlatformError;
use crate::overload::OverloadCtl;

/// A named, tenant-scoped workflow over a function DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowSpec {
    /// Workflow name (used in bundle annotations).
    pub name: String,
    /// Owning tenant (Roadrunner's trust boundary).
    pub tenant: String,
    /// The invocation graph.
    pub dag: WorkflowDag,
}

impl WorkflowSpec {
    /// Wraps an explicit DAG.
    pub fn from_dag(
        name: impl Into<String>,
        tenant: impl Into<String>,
        dag: WorkflowDag,
    ) -> Self {
        Self { name: name.into(), tenant: tenant.into(), dag }
    }

    /// Creates a sequential chain `f1 → f2 → … → fn`.
    pub fn sequence(
        name: impl Into<String>,
        tenant: impl Into<String>,
        functions: impl IntoIterator<Item = String>,
    ) -> Self {
        let mut dag = WorkflowDag::new();
        let mut prev: Option<String> = None;
        for f in functions {
            match prev.take() {
                None => {
                    dag.add_node(&f);
                }
                Some(p) => {
                    dag.add_edge(&p, &f);
                }
            }
            prev = Some(f);
        }
        Self::from_dag(name, tenant, dag)
    }

    /// Creates a fan-out: one source delivers to every target.
    pub fn fanout(
        name: impl Into<String>,
        tenant: impl Into<String>,
        source: impl Into<String>,
        targets: impl IntoIterator<Item = String>,
    ) -> Self {
        let source = source.into();
        let mut dag = WorkflowDag::new();
        dag.add_node(&source);
        for t in targets {
            dag.add_edge(&source, &t);
        }
        Self::from_dag(name, tenant, dag)
    }

    /// Creates a fan-in: every source delivers to one target.
    pub fn fan_in(
        name: impl Into<String>,
        tenant: impl Into<String>,
        sources: impl IntoIterator<Item = String>,
        target: impl Into<String>,
    ) -> Self {
        let target = target.into();
        let mut dag = WorkflowDag::new();
        for s in sources {
            dag.add_edge(&s, &target);
        }
        Self::from_dag(name, tenant, dag)
    }

    /// All functions referenced by the workflow, in first-appearance
    /// order, without duplicates (the DAG interns names through a hash
    /// guard, so this is O(n), not the old O(n²) scan).
    pub fn functions(&self) -> Vec<&str> {
        self.dag.nodes().collect()
    }

    /// Checks structural validity (delegates to
    /// [`WorkflowDag::validate`]: at least one edge, acyclic, connected).
    ///
    /// # Errors
    ///
    /// [`PlatformError::InvalidWorkflow`] describing the problem.
    pub fn validate(&self) -> Result<(), PlatformError> {
        self.dag.validate()
    }
}

/// A workflow spec with every derived structure the engines need,
/// computed **once** and reused across executions.
///
/// The load generators admit thousands of instances of the *same* spec;
/// re-validating the graph, re-running Kahn's algorithm and re-deriving
/// fan-in counts per arrival was pure rework. Compiling hoists all of it:
///
/// * structural validation ([`WorkflowSpec::validate`]) has already
///   passed — a `CompiledWorkflow` is valid by construction;
/// * [`topo_edges`](Self::topo_edges) is the serial engine's execution
///   order;
/// * [`fan_in`](Self::fan_in) (in-degrees), [`roots`](Self::roots) and
///   [`leaves`](Self::leaves) seed the concurrent engine's readiness
///   tracking without per-run graph walks.
///
/// Compile once per spec, then drive [`execute_compiled`] /
/// [`execute_compiled_at`] with it as many times as needed.
#[derive(Debug, Clone)]
pub struct CompiledWorkflow<'a> {
    spec: &'a WorkflowSpec,
    topo_edges: Vec<(usize, usize)>,
    in_degrees: Vec<usize>,
    roots: Vec<usize>,
    leaves: Vec<usize>,
}

impl<'a> CompiledWorkflow<'a> {
    /// Validates `spec` and precomputes the execution structures.
    ///
    /// # Errors
    ///
    /// [`PlatformError::InvalidWorkflow`] exactly when
    /// [`WorkflowSpec::validate`] fails.
    pub fn compile(spec: &'a WorkflowSpec) -> Result<Self, PlatformError> {
        spec.validate()?;
        let dag = &spec.dag;
        Ok(Self {
            spec,
            topo_edges: dag.topo_edges()?,
            in_degrees: dag.in_degrees(),
            roots: dag.roots(),
            leaves: dag.leaves(),
        })
    }

    /// The underlying spec.
    pub fn spec(&self) -> &'a WorkflowSpec {
        self.spec
    }

    /// The underlying graph.
    pub fn dag(&self) -> &'a WorkflowDag {
        &self.spec.dag
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.in_degrees.len()
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.topo_edges.len()
    }

    /// Edges in deterministic execution order (sources topologically,
    /// each source's out-edges in insertion order).
    pub fn topo_edges(&self) -> &[(usize, usize)] {
        &self.topo_edges
    }

    /// Fan-in (in-degree) of node `i` — how many deliveries it waits for.
    pub fn fan_in(&self, i: usize) -> usize {
        self.in_degrees[i]
    }

    /// Entry nodes (no incoming edges).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Result nodes (no outgoing edges).
    pub fn leaves(&self) -> &[usize] {
        &self.leaves
    }
}

/// Per-phase timing of one transfer, as attributed by the plane.
///
/// * `prepare_ns` — input delivery plus source handler execution;
/// * `transfer_ns` — payload movement proper (the paper's transfer
///   latency; wire occupancy for inter-node edges);
/// * `consume_ns` — target handler execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferTiming {
    /// Source-side preparation (charged to the source node's CPU).
    pub prepare_ns: Nanos,
    /// The transfer proper (link occupancy when the edge crosses nodes).
    pub transfer_ns: Nanos,
    /// Target-side consumption (charged to the target node's CPU).
    pub consume_ns: Nanos,
}

impl TransferTiming {
    /// Everything, end to end.
    pub fn total_ns(&self) -> Nanos {
        self.prepare_ns + self.transfer_ns + self.consume_ns
    }
}

/// The transport a workflow runs over: Roadrunner's shim modes or a
/// baseline's HTTP path.
pub trait DataPlane {
    /// Delivers `payload` from function `from` to function `to` and
    /// returns the bytes as the target received them.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Transfer`] (or any other variant) when delivery
    /// fails.
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError>;

    /// Like [`transfer`](Self::transfer), additionally attributing the
    /// edge's cost to prepare/transfer/consume phases. Planes that cannot
    /// attribute return `None`; the engines then treat the whole measured
    /// duration as transfer time.
    ///
    /// # Errors
    ///
    /// Same as [`transfer`](Self::transfer).
    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        self.transfer(from, to, payload).map(|received| (received, None))
    }

    /// Like [`transfer_detailed`](Self::transfer_detailed), carrying the
    /// **instance's** effective placement for both endpoints (`None` =
    /// no override). Planes that derive a delivery mode from co-location
    /// (`RoadrunnerPlane` in `roadrunner-core`) override this so a
    /// placement wrapper ([`Placed`](crate::loadgen::Placed)) can flip
    /// an edge between user-/kernel-space and network delivery per
    /// instance; the default ignores the overrides and keeps the
    /// deployment's static modes.
    ///
    /// # Errors
    ///
    /// Same as [`transfer`](Self::transfer).
    fn transfer_placed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
        _src_node: Option<usize>,
        _dst_node: Option<usize>,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        self.transfer_detailed(from, to, payload)
    }

    /// Node index `function` is placed on, for resource attribution in
    /// the concurrent engine. `None` (the default) schedules everything
    /// on node 0.
    fn placement(&self, _function: &str) -> Option<usize> {
        None
    }

    /// Observes the cluster's link-health epoch, bumped by the
    /// failure-aware load driver on every outage transition. Caching
    /// planes ([`MemoizedPlane`](crate::memo::MemoizedPlane)) key their
    /// entries on it so costs recorded under one health regime never
    /// replay under another; everything else ignores it (the default).
    fn set_health_epoch(&mut self, _epoch: u64) {}
}

/// Timing and integrity record for one workflow edge.
#[derive(Debug, Clone)]
pub struct EdgeResult {
    /// Sending function.
    pub from: String,
    /// Receiving function.
    pub to: String,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Busy virtual time the transfer itself took (excludes any
    /// contention wait in the concurrent engine).
    pub latency_ns: Nanos,
    /// When the edge started, relative to the run's start (for
    /// [`execute_concurrent_at`] this is absolute on the shared
    /// resources' timescale, so it is ≥ the instance's release time).
    pub start_ns: Nanos,
    /// When the edge completed, on the same timescale as `start_ns`
    /// (relative to the run's start; absolute on the shared resources'
    /// timescale for [`execute_concurrent_at`]). In the concurrent
    /// engine `finish_ns - start_ns` can exceed `latency_ns` when the
    /// edge waited for a contended resource mid-flight.
    pub finish_ns: Nanos,
    /// The payload as received (reference-counted; cheap to hold).
    pub received: Bytes,
}

impl EdgeResult {
    /// FNV-1a checksum of the received payload, for integrity assertions.
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.received)
    }
}

/// Result of a workflow execution.
#[derive(Debug, Clone)]
pub struct WorkflowRun {
    /// Per-edge results in execution order.
    pub edges: Vec<EdgeResult>,
    /// Virtual time from first send to last receive: the serial sum for
    /// [`execute`], the overlapped makespan for [`execute_concurrent`].
    pub total_latency_ns: Nanos,
}

impl WorkflowRun {
    /// Sum of payload bytes moved across all edges.
    pub fn total_bytes(&self) -> usize {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// The result of edge `from → to`, if it ran.
    pub fn edge(&self, from: &str, to: &str) -> Option<&EdgeResult> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }

    /// Sum of per-edge busy times — what a fully serialized schedule of
    /// these edges would cost.
    pub fn serialized_ns(&self) -> Nanos {
        self.edges.iter().map(|e| e.latency_ns).sum()
    }
}

/// The DAG's critical path under `run`'s measured per-edge busy times —
/// the lower bound no concurrent schedule of this workflow can beat.
///
/// # Errors
///
/// [`PlatformError::InvalidWorkflow`] if `spec`'s graph is cyclic, or if
/// `run` is missing an edge of the graph (i.e. it came from a different
/// spec).
pub fn critical_path_ns(spec: &WorkflowSpec, run: &WorkflowRun) -> Result<Nanos, PlatformError> {
    for (u, v) in spec.dag.edges() {
        let (from, to) = (spec.dag.node_name(u), spec.dag.node_name(v));
        if run.edge(from, to).is_none() {
            return Err(PlatformError::InvalidWorkflow(format!(
                "run has no result for edge `{from}` -> `{to}`; was it produced by this spec?"
            )));
        }
    }
    spec.dag.critical_path_ns(|u, v| {
        run.edge(spec.dag.node_name(u), spec.dag.node_name(v))
            .map(|e| e.latency_ns)
            .unwrap_or(0)
    })
}

/// Executes `spec` serially over `plane`, timing each edge on `clock`.
///
/// Edges run one after another in topological order (for the legacy
/// sequence/fan-out/fan-in shapes this is exactly the old pattern
/// engine's order, so measured numbers are unchanged). Genuinely
/// overlapping execution is [`execute_concurrent`]'s job.
///
/// Each root receives the initial `payload`; every edge forwards its
/// source's current payload, and a node's payload is the first delivery
/// it receives (identical to every other delivery on integrity-preserving
/// planes).
///
/// # Errors
///
/// Propagates validation and transfer errors.
pub fn execute(
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    spec: &WorkflowSpec,
    payload: Bytes,
) -> Result<WorkflowRun, PlatformError> {
    execute_compiled(plane, clock, &CompiledWorkflow::compile(spec)?, payload)
}

/// [`execute`] over a pre-compiled workflow: validation and topological
/// sorting were paid once at [`CompiledWorkflow::compile`] time, so
/// repeated executions of the same spec skip all per-run graph work.
///
/// # Errors
///
/// Propagates transfer errors.
pub fn execute_compiled(
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    compiled: &CompiledWorkflow<'_>,
    payload: Bytes,
) -> Result<WorkflowRun, PlatformError> {
    let dag = compiled.dag();
    let started = clock.now();
    let mut node_payload: Vec<Option<Bytes>> = vec![None; compiled.node_count()];
    for &root in compiled.roots() {
        node_payload[root] = Some(payload.clone());
    }
    let mut edges = Vec::with_capacity(compiled.edge_count());
    for &(u, v) in compiled.topo_edges() {
        // One logical copy per transfer: the handle passed to the plane
        // IS the copy (Bytes handoff), sized before the move.
        let current = node_payload[u].as_ref().expect("topo order delivers inputs first").clone();
        let bytes = current.len();
        let (from, to) = (dag.node_name(u), dag.node_name(v));
        let t0 = clock.now();
        let received = plane.transfer(from, to, current)?;
        let t1 = clock.now();
        if node_payload[v].is_none() {
            node_payload[v] = Some(received.clone());
        }
        edges.push(EdgeResult {
            from: from.to_owned(),
            to: to.to_owned(),
            bytes,
            latency_ns: t1 - t0,
            start_ns: t0 - started,
            finish_ns: t1 - started,
            received,
        });
    }
    Ok(WorkflowRun { edges, total_latency_ns: clock.now() - started })
}

/// Executes `spec` over `plane` with the discrete-event engine:
/// independent edges overlap in virtual time, contended resources
/// serialize.
///
/// Every edge still *really* runs on the plane (payload bytes move, CPU
/// accounts are charged, the shared clock advances as it measures), in
/// deterministic event order. The engine then places each edge's
/// prepare/transfer/consume phases onto `resources`' timelines — prepare
/// on the source node's cores, the transfer proper on the shared link for
/// inter-node edges (or the source cores for co-located ones), consume on
/// the target node's cores — and reports the overlapped makespan as
/// `total_latency_ns`. An edge becomes ready the instant all of its
/// target's inputs exist; readiness events drain through a deterministic
/// [`EventQueue`].
///
/// The returned makespan satisfies
/// `critical_path ≤ total_latency_ns ≤ serialized sum`.
///
/// # Errors
///
/// Propagates validation and transfer errors.
pub fn execute_concurrent(
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    spec: &WorkflowSpec,
    payload: Bytes,
    resources: &mut SchedResources,
) -> Result<WorkflowRun, PlatformError> {
    execute_concurrent_at(plane, clock, spec, payload, resources, 0)
}

/// [`execute_concurrent`] with a release time: the workflow's roots
/// become ready at `release_ns` on `resources`' shared timescale instead
/// of at 0.
///
/// This is the admission primitive of the open-loop load generator
/// ([`crate::loadgen`]): each arriving workflow instance is executed onto
/// the *same* `resources`, released at its arrival time, so independent
/// instances genuinely contend for cores and links in virtual time.
/// Edge `start_ns`/`finish_ns` are absolute on the resources' timescale;
/// `total_latency_ns` is the instance's makespan measured **from its
/// release** (its sojourn time under load).
///
/// # Errors
///
/// Propagates validation and transfer errors.
pub fn execute_concurrent_at(
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    spec: &WorkflowSpec,
    payload: Bytes,
    resources: &mut SchedResources,
    release_ns: Nanos,
) -> Result<WorkflowRun, PlatformError> {
    execute_compiled_at(plane, clock, &CompiledWorkflow::compile(spec)?, payload, resources, release_ns)
}

/// [`execute_concurrent_at`] over a pre-compiled workflow — the admission
/// primitive the load generators actually drive: one
/// [`CompiledWorkflow`] serves every arrival of a spec, so per-instance
/// cost is the edges themselves, not graph validation and sorting.
///
/// # Errors
///
/// Propagates transfer errors.
pub fn execute_compiled_at(
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    compiled: &CompiledWorkflow<'_>,
    payload: Bytes,
    resources: &mut SchedResources,
    release_ns: Nanos,
) -> Result<WorkflowRun, PlatformError> {
    match run_compiled_at(plane, clock, compiled, payload, resources, release_ns, None, None)? {
        FaultyOutcome::Completed { run, .. } => Ok(run),
        FaultyOutcome::Failed { .. } => unreachable!("edges cannot fail without a retry policy"),
        FaultyOutcome::DeadlineExceeded { .. } => {
            unreachable!("deadlines require an overload control block")
        }
    }
}

/// Bounded retry-with-backoff for transfer failures, in virtual time.
///
/// An edge attempt fails when its source node, target node, or the link
/// between them is down (under the [`OutageSchedule`](roadrunner_vkernel::OutageSchedule)
/// attached to the run's [`SchedResources`]) at the attempt's ready
/// instant, or when a mid-edge reservation is rejected because a window
/// opened between phases. The engine then re-attempts the edge after a
/// deterministic exponential backoff — `min(base << retries, max)` —
/// until `max_attempts` attempts have failed, at which point the whole
/// instance fails with per-edge accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per edge (the first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff_ns: Nanos,
    /// Backoff ceiling for the exponential schedule.
    pub max_backoff_ns: Nanos,
}

impl RetryPolicy {
    /// A policy of `max_attempts` attempts with exponential backoff
    /// from `base_backoff_ns` capped at `max_backoff_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32, base_backoff_ns: Nanos, max_backoff_ns: Nanos) -> Self {
        assert!(max_attempts > 0, "an edge needs at least one attempt");
        Self { max_attempts, base_backoff_ns, max_backoff_ns }
    }

    /// The backoff after the `failed_attempts`-th failed attempt
    /// (counted from 1): `min(base × 2^(failed_attempts−1), max)`.
    /// The exponential factor saturates at `u64::MAX` once the shift
    /// exceeds the type — high attempt counts ride the `max_backoff_ns`
    /// ceiling instead of wrapping or truncating the doubling.
    pub fn backoff_ns(&self, failed_attempts: u32) -> Nanos {
        let shift = failed_attempts.saturating_sub(1);
        let factor = if shift >= 64 { u64::MAX } else { 1u64 << shift };
        self.base_backoff_ns.saturating_mul(factor).min(self.max_backoff_ns)
    }
}

impl Default for RetryPolicy {
    /// 4 attempts, 1 ms base backoff, 50 ms ceiling — rides out
    /// millisecond-scale link flaps, gives up on dead nodes quickly.
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff_ns: 1_000_000, max_backoff_ns: 50_000_000 }
    }
}

/// Accounting for the edge that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeFailure {
    /// Sending function of the failed edge.
    pub from: String,
    /// Receiving function of the failed edge.
    pub to: String,
    /// Attempts made (== the policy's `max_attempts`).
    pub attempts: u32,
    /// Virtual instant the engine gave up, on the resources' timescale.
    pub failed_at_ns: Nanos,
}

/// Outcome of a fault-aware execution: the run completed (possibly
/// after retries), an edge exhausted its retry budget and the
/// instance failed, or the instance blew its deadline and aborted
/// early. `retries` counts failed attempts across **all** edges of the
/// instance.
#[derive(Debug)]
pub enum FaultyOutcome {
    /// Every edge eventually succeeded.
    Completed {
        /// The completed run, identical in shape to a fault-free one.
        run: WorkflowRun,
        /// Failed attempts absorbed along the way.
        retries: u32,
    },
    /// An edge ran out of attempts; the instance did not complete.
    Failed {
        /// The edge that gave up.
        failure: EdgeFailure,
        /// Failed attempts across all edges, the fatal ones included.
        retries: u32,
    },
    /// An edge's ready instant passed the instance's absolute deadline
    /// (overload control): the engine aborted before placing further
    /// phases. Distinct from [`FaultyOutcome::Failed`] — the work was
    /// shed as stale, not exhausted.
    DeadlineExceeded {
        /// The ready instant that crossed the deadline.
        at_ns: Nanos,
        /// Failed attempts absorbed before the abort.
        retries: u32,
    },
}

/// [`execute_compiled_at`] made fault-aware: edge attempts consult the
/// outage schedule attached to `resources`, failed attempts re-run
/// after `retry`'s deterministic backoff, and an edge that exhausts its
/// budget fails the instance with accounting instead of an opaque
/// error. With an empty (or absent) outage schedule the behavior — and
/// every reservation — is byte-identical to [`execute_compiled_at`].
///
/// # Errors
///
/// Propagates non-fault transfer errors (unknown function, integrity
/// violations); outage-induced failures come back as
/// [`FaultyOutcome::Failed`], not `Err`.
pub fn execute_compiled_faulty_at(
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    compiled: &CompiledWorkflow<'_>,
    payload: Bytes,
    resources: &mut SchedResources,
    release_ns: Nanos,
    retry: &RetryPolicy,
) -> Result<FaultyOutcome, PlatformError> {
    run_compiled_at(plane, clock, compiled, payload, resources, release_ns, Some(retry), None)
}

/// One edge attempt's scheduling result.
enum Attempt {
    Done { received: Bytes, timing: TransferTiming, start: Nanos, finish: Nanos },
    GaveUp { at: Nanos },
    DeadlineBlown { at: Nanos },
}

/// The shared engine behind [`execute_compiled_at`] (faults `None`) and
/// [`execute_compiled_faulty_at`] (faults `Some`). With `None`, the
/// fault pre-flight is skipped and every `try_reserve_*` degrades to a
/// plain reservation, so the fault-free path is the exact schedule the
/// byte-identity gates pin.
///
/// `overload` threads the load engine's per-instance control block in:
/// deadlines are checked at each edge's ready instant *before* a new
/// attempt is started, open circuit breakers fail attempts fast (no
/// transfer, no reservations), and each retry must clear the
/// (tenant, function, node) token budget. `None` (every direct caller
/// outside the overload-aware load engine) skips all three checks and
/// leaves the schedule untouched.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub(crate) fn run_compiled_at(
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    compiled: &CompiledWorkflow<'_>,
    payload: Bytes,
    resources: &mut SchedResources,
    release_ns: Nanos,
    faults: Option<&RetryPolicy>,
    mut overload: Option<OverloadCtl<'_>>,
) -> Result<FaultyOutcome, PlatformError> {
    let dag = compiled.dag();
    let n = compiled.node_count();
    let mut pending = compiled.in_degrees.clone();
    let mut node_payload: Vec<Option<Bytes>> = vec![None; n];
    let mut node_ready: Vec<Nanos> = vec![release_ns; n];
    let mut queue = EventQueue::new();
    for &root in compiled.roots() {
        node_payload[root] = Some(payload.clone());
        queue.push(release_ns, root);
    }
    let mut edges = Vec::with_capacity(compiled.edge_count());
    let mut makespan: Nanos = 0;
    let mut retries: u32 = 0;
    while let Some((ready_ns, u)) = queue.pop() {
        for &v in dag.successors(u) {
            // One logical copy per transfer (satellite of ISSUE 5): the
            // reference-counted handle given to the plane is the single
            // per-edge copy; its length is read before the move.
            let current =
                node_payload[u].as_ref().expect("events fire after inputs exist").clone();
            let bytes = current.len();
            let (from, to) = (dag.node_name(u).to_owned(), dag.node_name(v).to_owned());
            let src = plane.placement(&from).unwrap_or(0);
            let dst = plane.placement(&to).unwrap_or(0);

            let mut attempts: u32 = 0;
            let mut edge_ready = ready_ns;
            let attempt = loop {
                // Deadline gate: once the edge's ready instant passes
                // the instance's absolute deadline, abort before
                // starting another attempt — stale work places no more
                // phases.
                if let Some(ctl) = overload.as_ref() {
                    if ctl.deadline_ns.is_some_and(|d| edge_ready > d) {
                        break Attempt::DeadlineBlown { at: edge_ready };
                    }
                }
                attempts += 1;
                // An open circuit fails the attempt fast: no transfer,
                // no reservations, and the rejection is *not* recorded
                // in the breaker's own window.
                let breaker_blocked = overload
                    .as_mut()
                    .is_some_and(|ctl| !ctl.state.breaker_allows(ctl.tenant, v, dst, edge_ready));
                // Fault pre-flight: a down endpoint or link at the
                // attempt's ready instant fails the attempt before any
                // work is done.
                let blocked = breaker_blocked
                    || (faults.is_some()
                        && (resources.node_down_at(src, edge_ready)
                            || resources.node_down_at(dst, edge_ready)
                            || (src != dst
                                && resources.link_down_between_at(src, dst, edge_ready))));
                if !blocked {
                    let t0 = clock.now();
                    let (received, timing) =
                        plane.transfer_detailed(&from, &to, current.clone())?;
                    let measured = clock.now() - t0;
                    let timing = timing.unwrap_or(TransferTiming {
                        prepare_ns: 0,
                        transfer_ns: measured,
                        consume_ns: 0,
                    });

                    // Place the three phases, in order, on their
                    // resources. A rejection mid-edge (a down window
                    // opened between phases) fails the attempt; phases
                    // already placed stay reserved — work wasted on a
                    // half-sent transfer.
                    let placed = (|| {
                        let p_start =
                            resources.try_reserve_cpu(src, edge_ready, timing.prepare_ns)?;
                        let p_end = p_start + timing.prepare_ns;
                        let t_start = if src == dst {
                            resources.try_reserve_cpu(src, p_end, timing.transfer_ns)?
                        } else {
                            resources.try_reserve_link(src, dst, p_end, timing.transfer_ns)?
                        };
                        let t_end = t_start + timing.transfer_ns;
                        let c_start = resources.try_reserve_cpu(dst, t_end, timing.consume_ns)?;
                        Some((p_start, t_start, c_start))
                    })();
                    if let Some((p_start, t_start, c_start)) = placed {
                        let finish = c_start + timing.consume_ns;
                        // The edge starts where its first nonzero phase
                        // was granted.
                        let start = if timing.prepare_ns > 0 {
                            p_start
                        } else if timing.transfer_ns > 0 {
                            t_start
                        } else {
                            c_start
                        };
                        if let Some(ctl) = overload.as_mut() {
                            ctl.state.record_attempt(ctl.tenant, v, dst, finish, true);
                        }
                        break Attempt::Done { received, timing, start, finish };
                    }
                }
                // Only real failures feed the breaker window; a
                // breaker-induced rejection must not extend its own
                // open verdict.
                if !breaker_blocked {
                    if let Some(ctl) = overload.as_mut() {
                        ctl.state.record_attempt(ctl.tenant, v, dst, edge_ready, false);
                    }
                }
                let Some(policy) = faults else {
                    break Attempt::GaveUp { at: edge_ready };
                };
                if attempts >= policy.max_attempts {
                    break Attempt::GaveUp { at: edge_ready };
                }
                // A retry under budget control must buy a token; an
                // empty (tenant, function, node) bucket means give up
                // now — the anti-retry-storm cap.
                if let Some(ctl) = overload.as_mut() {
                    if !ctl.state.try_spend_retry(ctl.tenant, v, dst, edge_ready) {
                        break Attempt::GaveUp { at: edge_ready };
                    }
                }
                edge_ready = edge_ready.saturating_add(policy.backoff_ns(attempts));
            };
            retries += attempts.saturating_sub(1);

            match attempt {
                Attempt::Done { received, timing, start, finish } => {
                    makespan = makespan.max(finish);
                    if node_payload[v].is_none() {
                        node_payload[v] = Some(received.clone());
                    }
                    edges.push(EdgeResult {
                        from,
                        to,
                        bytes,
                        latency_ns: timing.total_ns(),
                        start_ns: start,
                        finish_ns: finish,
                        received,
                    });
                    node_ready[v] = node_ready[v].max(finish);
                    pending[v] -= 1;
                    if pending[v] == 0 && !dag.successors(v).is_empty() {
                        queue.push(node_ready[v], v);
                    }
                }
                Attempt::GaveUp { at } => {
                    return Ok(FaultyOutcome::Failed {
                        failure: EdgeFailure { from, to, attempts, failed_at_ns: at },
                        retries,
                    });
                }
                Attempt::DeadlineBlown { at } => {
                    return Ok(FaultyOutcome::DeadlineExceeded { at_ns: at, retries });
                }
            }
        }
    }
    Ok(FaultyOutcome::Completed {
        run: WorkflowRun { edges, total_latency_ns: makespan.saturating_sub(release_ns) },
        retries,
    })
}

pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plane that passes payloads through unchanged, charging 1 µs per
    /// edge plus 1 ns per byte, and reporting a breakdown.
    struct PassThrough {
        clock: VirtualClock,
    }

    impl DataPlane for PassThrough {
        fn transfer(
            &mut self,
            _from: &str,
            _to: &str,
            payload: Bytes,
        ) -> Result<Bytes, PlatformError> {
            self.clock.advance(1_000 + payload.len() as u64);
            Ok(payload)
        }

        fn transfer_detailed(
            &mut self,
            from: &str,
            to: &str,
            payload: Bytes,
        ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
            let transfer_ns = 1_000 + payload.len() as u64;
            let received = self.transfer(from, to, payload)?;
            Ok((received, Some(TransferTiming { prepare_ns: 0, transfer_ns, consume_ns: 0 })))
        }
    }

    #[test]
    fn sequence_chains_payloads() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = WorkflowSpec::sequence(
            "wf",
            "acme",
            ["a".to_owned(), "b".to_owned(), "c".to_owned()],
        );
        let run = execute(&mut plane, &clock, &spec, Bytes::from(vec![7u8; 100])).unwrap();
        assert_eq!(run.edges.len(), 2);
        assert_eq!(run.edges[0].from, "a");
        assert_eq!(run.edges[1].to, "c");
        assert_eq!(run.total_bytes(), 200);
        assert_eq!(run.total_latency_ns, 2 * (1_000 + 100));
        assert_eq!(run.edges[0].checksum(), run.edges[1].checksum());
        // Serial schedule: edges back to back.
        assert_eq!(run.edges[0].start_ns, 0);
        assert_eq!(run.edges[1].start_ns, run.edges[0].finish_ns);
    }

    #[test]
    fn fanout_delivers_to_every_target() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let targets: Vec<String> = (0..5).map(|i| format!("t{i}")).collect();
        let spec = WorkflowSpec::fanout("wf", "acme", "src", targets);
        let run = execute(&mut plane, &clock, &spec, Bytes::from_static(b"xy")).unwrap();
        assert_eq!(run.edges.len(), 5);
        assert!(run.edges.iter().all(|e| e.from == "src" && &e.received[..] == b"xy"));
    }

    #[test]
    fn fanin_collects_from_every_source() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = WorkflowSpec::fan_in(
            "wf",
            "acme",
            ["s1".to_owned(), "s2".to_owned()],
            "sink",
        );
        let run = execute(&mut plane, &clock, &spec, Bytes::from_static(b"z")).unwrap();
        assert_eq!(run.edges.len(), 2);
        assert!(run.edges.iter().all(|e| e.to == "sink"));
    }

    #[test]
    fn invalid_specs_rejected() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = WorkflowSpec::sequence("wf", "t", ["only".to_owned()]);
        assert!(matches!(
            execute(&mut plane, &clock, &spec, Bytes::new()),
            Err(PlatformError::InvalidWorkflow(_))
        ));
        let spec = WorkflowSpec::fanout("wf", "t", "src", Vec::<String>::new());
        assert!(spec.validate().is_err());
        let spec = WorkflowSpec::fan_in("wf", "t", Vec::<String>::new(), "sink");
        assert!(spec.validate().is_err());
        // A sequence that revisits a function is a cycle now.
        let spec = WorkflowSpec::sequence(
            "wf",
            "t",
            ["a".to_owned(), "b".to_owned(), "a".to_owned()],
        );
        assert!(spec.validate().is_err());
    }

    #[test]
    fn functions_lists_unique_names_in_order() {
        let spec = WorkflowSpec::sequence(
            "wf",
            "t",
            ["a".to_owned(), "b".to_owned(), "a".to_owned()],
        );
        assert_eq!(spec.functions(), vec!["a", "b"]);
        let spec = WorkflowSpec::fanout("wf", "t", "s", vec!["x".to_owned(), "y".to_owned()]);
        assert_eq!(spec.functions(), vec!["s", "x", "y"]);
        let spec = WorkflowSpec::fan_in(
            "wf",
            "t",
            ["s1".to_owned(), "s2".to_owned()],
            "sink",
        );
        assert_eq!(spec.functions(), vec!["s1", "sink", "s2"]);
    }

    #[test]
    fn transfer_errors_propagate() {
        struct Failing;
        impl DataPlane for Failing {
            fn transfer(&mut self, _: &str, _: &str, _: Bytes) -> Result<Bytes, PlatformError> {
                Err(PlatformError::Transfer("link down".into()))
            }
        }
        let clock = VirtualClock::new();
        let spec =
            WorkflowSpec::sequence("wf", "t", ["a".to_owned(), "b".to_owned()]);
        assert!(matches!(
            execute(&mut Failing, &clock, &spec, Bytes::new()),
            Err(PlatformError::Transfer(_))
        ));
        let mut res = SchedResources::new(1, 4);
        assert!(matches!(
            execute_concurrent(&mut Failing, &clock, &spec, Bytes::new(), &mut res),
            Err(PlatformError::Transfer(_))
        ));
    }

    fn diamond_spec() -> WorkflowSpec {
        let mut dag = WorkflowDag::new();
        dag.add_edge("a", "b").add_edge("a", "c").add_edge("b", "d").add_edge("c", "d");
        WorkflowSpec::from_dag("diamond", "t", dag)
    }

    #[test]
    fn concurrent_diamond_overlaps_but_respects_critical_path() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = diamond_spec();
        let payload = Bytes::from(vec![1u8; 10_000]);
        let mut res = SchedResources::new(1, 4);
        let run = execute_concurrent(&mut plane, &clock, &spec, payload, &mut res).unwrap();
        assert_eq!(run.edges.len(), 4);
        let per_edge = 1_000 + 10_000;
        // Branches overlap: both a->b and a->c start at 0.
        assert_eq!(run.edge("a", "b").unwrap().start_ns, 0);
        assert_eq!(run.edge("a", "c").unwrap().start_ns, 0);
        // Two levels of two overlapped edges each.
        assert_eq!(run.total_latency_ns, 2 * per_edge);
        assert!(run.total_latency_ns < run.serialized_ns());
        let cp = critical_path_ns(&spec, &run).unwrap();
        assert_eq!(cp, 2 * per_edge);
        assert!(run.total_latency_ns >= cp);
    }

    #[test]
    fn concurrent_serializes_on_capacity_one_cpu() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = diamond_spec();
        let payload = Bytes::from(vec![1u8; 10_000]);
        let mut res = SchedResources::new(1, 1);
        let run = execute_concurrent(&mut plane, &clock, &spec, payload, &mut res).unwrap();
        // One lane: nothing overlaps, makespan equals the serial sum.
        assert_eq!(run.total_latency_ns, run.serialized_ns());
    }

    #[test]
    fn serial_and_concurrent_agree_on_payload_integrity() {
        let spec = diamond_spec();
        let payload = Bytes::from(vec![9u8; 5_000]);
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let serial = execute(&mut plane, &clock, &spec, payload.clone()).unwrap();
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let mut res = SchedResources::new(1, 4);
        let conc = execute_concurrent(&mut plane, &clock, &spec, payload, &mut res).unwrap();
        assert_eq!(serial.edges.len(), conc.edges.len());
        for e in &serial.edges {
            let c = conc.edge(&e.from, &e.to).unwrap();
            assert_eq!(e.bytes, c.bytes);
            assert_eq!(e.checksum(), c.checksum());
        }
        assert!(conc.total_latency_ns <= serial.total_latency_ns);
    }

    #[test]
    fn concurrent_inter_node_edges_contend_on_the_link() {
        // Planes that place functions on two nodes route transfer time
        // through the capacity-1 link: a 2-branch fan-out can't halve.
        struct TwoNode {
            clock: VirtualClock,
        }
        impl DataPlane for TwoNode {
            fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
                self.clock.advance(1_000);
                Ok(p)
            }
            fn transfer_detailed(
                &mut self,
                f: &str,
                t: &str,
                p: Bytes,
            ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
                let received = self.transfer(f, t, p)?;
                Ok((
                    received,
                    Some(TransferTiming { prepare_ns: 0, transfer_ns: 1_000, consume_ns: 0 }),
                ))
            }
            fn placement(&self, function: &str) -> Option<usize> {
                Some(usize::from(function != "src"))
            }
        }
        let clock = VirtualClock::new();
        let mut plane = TwoNode { clock: clock.clone() };
        let spec = WorkflowSpec::fanout(
            "wf",
            "t",
            "src",
            (0..4).map(|i| format!("t{i}")).collect::<Vec<_>>(),
        );
        let mut res = SchedResources::new(2, 4);
        let run =
            execute_concurrent(&mut plane, &clock, &spec, Bytes::from_static(b"x"), &mut res)
                .unwrap();
        // All four transfers queue on the single link.
        assert_eq!(run.total_latency_ns, 4_000);
    }

    #[test]
    fn released_instances_contend_and_never_speed_up() {
        let spec = diamond_spec();
        let payload = Bytes::from(vec![1u8; 10_000]);
        let per_edge = 1_000 + 10_000;

        // Uncontended baseline on fresh resources.
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let mut fresh = SchedResources::new(1, 2);
        let base = execute_concurrent(&mut plane, &clock, &spec, payload.clone(), &mut fresh)
            .unwrap()
            .total_latency_ns;
        assert_eq!(base, 2 * per_edge);

        // Two instances admitted onto *shared* resources, the second
        // released mid-flight of the first.
        let mut shared = SchedResources::new(1, 2);
        let release = per_edge as Nanos;
        let first =
            execute_concurrent_at(&mut plane, &clock, &spec, payload.clone(), &mut shared, 0)
                .unwrap();
        let second =
            execute_concurrent_at(&mut plane, &clock, &spec, payload, &mut shared, release)
                .unwrap();
        // The first instance saw empty resources: identical to baseline.
        assert_eq!(first.total_latency_ns, base);
        // The second queues behind the first on the two lanes: its
        // sojourn exceeds the uncontended makespan.
        assert!(second.total_latency_ns > base);
        // And nothing of it starts before its release.
        assert!(second.edges.iter().all(|e| e.start_ns >= release));
    }

    #[test]
    fn release_alone_does_not_change_the_makespan() {
        let spec = diamond_spec();
        let payload = Bytes::from(vec![3u8; 2_000]);
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let mut res = SchedResources::new(1, 4);
        let base =
            execute_concurrent(&mut plane, &clock, &spec, payload.clone(), &mut res).unwrap();
        let mut res = SchedResources::new(1, 4);
        let shifted =
            execute_concurrent_at(&mut plane, &clock, &spec, payload, &mut res, 777_000).unwrap();
        // Empty resources: shifting the release shifts starts, not spans.
        assert_eq!(shifted.total_latency_ns, base.total_latency_ns);
        assert_eq!(shifted.edges[0].start_ns, base.edges[0].start_ns + 777_000);
    }

    #[test]
    fn mesh_resources_route_disjoint_pairs_onto_distinct_links() {
        // Functions on four nodes; the two cross-node edges use disjoint
        // node pairs, so on a mesh they overlap fully.
        struct FourNode {
            clock: VirtualClock,
        }
        impl DataPlane for FourNode {
            fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
                self.clock.advance(1_000);
                Ok(p)
            }
            fn transfer_detailed(
                &mut self,
                f: &str,
                t: &str,
                p: Bytes,
            ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
                let received = self.transfer(f, t, p)?;
                Ok((
                    received,
                    Some(TransferTiming { prepare_ns: 0, transfer_ns: 1_000, consume_ns: 0 }),
                ))
            }
            fn placement(&self, function: &str) -> Option<usize> {
                Some(match function {
                    "a" => 0,
                    "b" => 1,
                    "c" => 2,
                    _ => 3,
                })
            }
        }
        // s fans out to a and c (disjoint pairs 3→0 and 3→2), which then
        // forward over two more disjoint pairs 0→1 and 2→3.
        let mut dag = WorkflowDag::new();
        dag.add_edge("a", "b").add_edge("c", "d");
        dag.add_edge("s", "a").add_edge("s", "c");
        let spec = WorkflowSpec::from_dag("mesh", "t", dag);
        let clock = VirtualClock::new();
        let mut plane = FourNode { clock: clock.clone() };

        let mut mesh = SchedResources::mesh(&[4, 4, 4, 4]);
        let overlapped =
            execute_concurrent(&mut plane, &clock, &spec, Bytes::from_static(b"x"), &mut mesh)
                .unwrap();
        let mut shared = SchedResources::new(4, 4);
        let serialized =
            execute_concurrent(&mut plane, &clock, &spec, Bytes::from_static(b"x"), &mut shared)
                .unwrap();
        // Mesh: s→a ∥ s→c then a→b ∥ c→d → 2 levels. Shared WAN: all four
        // cross-node transfers queue on one timeline → 4 slots.
        assert_eq!(overlapped.total_latency_ns, 2_000);
        assert_eq!(serialized.total_latency_ns, 4_000);
    }

    #[test]
    fn critical_path_rejects_a_run_from_another_spec() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = WorkflowSpec::sequence("wf", "t", ["a".to_owned(), "b".to_owned()]);
        let run = execute(&mut plane, &clock, &spec, Bytes::from_static(b"x")).unwrap();
        let other = diamond_spec();
        assert!(matches!(
            critical_path_ns(&other, &run),
            Err(PlatformError::InvalidWorkflow(_))
        ));
        assert!(critical_path_ns(&spec, &run).is_ok());
    }

    #[test]
    fn consume_only_edges_anchor_start_at_the_consume_phase() {
        // A plane whose whole cost is target-side consumption: the edge's
        // reported start must be where the consume phase was granted, not
        // the (free) ready time.
        struct ConsumeOnly {
            clock: VirtualClock,
        }
        impl DataPlane for ConsumeOnly {
            fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
                self.clock.advance(1_000);
                Ok(p)
            }
            fn transfer_detailed(
                &mut self,
                f: &str,
                t: &str,
                p: Bytes,
            ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
                let received = self.transfer(f, t, p)?;
                Ok((
                    received,
                    Some(TransferTiming { prepare_ns: 0, transfer_ns: 0, consume_ns: 1_000 }),
                ))
            }
        }
        let clock = VirtualClock::new();
        let mut plane = ConsumeOnly { clock: clock.clone() };
        let spec = WorkflowSpec::fanout(
            "wf",
            "t",
            "s",
            (0..2).map(|i| format!("t{i}")).collect::<Vec<_>>(),
        );
        // One lane: the second edge's consume phase queues behind the
        // first, so its start slides to 1_000.
        let mut res = SchedResources::new(1, 1);
        let run =
            execute_concurrent(&mut plane, &clock, &spec, Bytes::from_static(b"x"), &mut res)
                .unwrap();
        assert_eq!(run.edge("s", "t0").unwrap().start_ns, 0);
        assert_eq!(run.edge("s", "t1").unwrap().start_ns, 1_000);
        assert_eq!(run.edge("s", "t1").unwrap().finish_ns, 2_000);
    }

    #[test]
    fn compiled_workflow_exposes_the_precomputed_shapes() {
        let spec = diamond_spec();
        let compiled = CompiledWorkflow::compile(&spec).unwrap();
        assert_eq!(compiled.node_count(), 4);
        assert_eq!(compiled.edge_count(), 4);
        assert_eq!(compiled.roots(), &[0]);
        assert_eq!(compiled.leaves(), &[3]);
        assert_eq!(compiled.fan_in(0), 0);
        assert_eq!(compiled.fan_in(3), 2);
        assert_eq!(compiled.topo_edges(), spec.dag.topo_edges().unwrap().as_slice());
        assert_eq!(compiled.spec(), &spec);
        // Invalid specs fail at compile time, same error the engines gave.
        let bad = WorkflowSpec::sequence("wf", "t", ["only".to_owned()]);
        assert!(matches!(
            CompiledWorkflow::compile(&bad),
            Err(PlatformError::InvalidWorkflow(_))
        ));
    }

    #[test]
    fn compiled_engines_match_the_plain_entry_points() {
        let spec = diamond_spec();
        let payload = Bytes::from(vec![5u8; 3_000]);
        let compiled = CompiledWorkflow::compile(&spec).unwrap();

        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let plain = execute(&mut plane, &clock, &spec, payload.clone()).unwrap();
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let fast = execute_compiled(&mut plane, &clock, &compiled, payload.clone()).unwrap();
        assert_eq!(plain.total_latency_ns, fast.total_latency_ns);
        assert_eq!(plain.edges.len(), fast.edges.len());
        for (a, b) in plain.edges.iter().zip(&fast.edges) {
            assert_eq!((&a.from, &a.to, a.bytes, a.latency_ns), (&b.from, &b.to, b.bytes, b.latency_ns));
            assert_eq!(a.checksum(), b.checksum());
        }

        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let mut res = SchedResources::new(1, 4);
        let plain =
            execute_concurrent_at(&mut plane, &clock, &spec, payload.clone(), &mut res, 500)
                .unwrap();
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let mut res = SchedResources::new(1, 4);
        // The same compiled form serves repeated executions.
        for _ in 0..2 {
            let fast = execute_compiled_at(
                &mut plane,
                &clock,
                &compiled,
                payload.clone(),
                &mut SchedResources::new(1, 4),
                500,
            )
            .unwrap();
            assert_eq!(fast.total_latency_ns, plain.total_latency_ns);
        }
        let fast =
            execute_compiled_at(&mut plane, &clock, &compiled, payload, &mut res, 500).unwrap();
        for (a, b) in plain.edges.iter().zip(&fast.edges) {
            assert_eq!((a.start_ns, a.finish_ns, a.latency_ns), (b.start_ns, b.finish_ns, b.latency_ns));
        }
    }

    #[test]
    fn default_transfer_detailed_reports_no_breakdown() {
        struct Plain {
            clock: VirtualClock,
        }
        impl DataPlane for Plain {
            fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
                self.clock.advance(500);
                Ok(p)
            }
        }
        let clock = VirtualClock::new();
        let mut plane = Plain { clock: clock.clone() };
        let (received, timing) =
            plane.transfer_detailed("a", "b", Bytes::from_static(b"q")).unwrap();
        assert_eq!(&received[..], b"q");
        assert!(timing.is_none());
        // The concurrent engine falls back to the measured duration.
        let spec = WorkflowSpec::sequence("wf", "t", ["a".to_owned(), "b".to_owned()]);
        let mut res = SchedResources::new(1, 4);
        let run = execute_concurrent(
            &mut plane,
            &clock,
            &spec,
            Bytes::from_static(b"q"),
            &mut res,
        )
        .unwrap();
        assert_eq!(run.total_latency_ns, 500);
    }

    /// A two-node plane for fault tests: `src` on node 0, everything
    /// else on node 1, 1 µs per transfer.
    struct SplitPlane {
        clock: VirtualClock,
    }

    impl DataPlane for SplitPlane {
        fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
            self.clock.advance(1_000);
            Ok(p)
        }
        fn transfer_detailed(
            &mut self,
            f: &str,
            t: &str,
            p: Bytes,
        ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
            let received = self.transfer(f, t, p)?;
            Ok((received, Some(TransferTiming { prepare_ns: 0, transfer_ns: 1_000, consume_ns: 0 })))
        }
        fn placement(&self, function: &str) -> Option<usize> {
            Some(usize::from(function != "src"))
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let policy = RetryPolicy::new(10, 1_000, 5_000);
        assert_eq!(policy.backoff_ns(1), 1_000);
        assert_eq!(policy.backoff_ns(2), 2_000);
        assert_eq!(policy.backoff_ns(3), 4_000);
        assert_eq!(policy.backoff_ns(4), 5_000); // capped
        assert_eq!(policy.backoff_ns(100), 5_000); // shift saturates too
    }

    #[test]
    fn backoff_saturates_at_the_shift_boundary_instead_of_overflowing() {
        // An uncapped policy exposes the raw doubling sequence. The
        // 63rd failure is the last exact power of two a u64 can hold;
        // 64 and beyond must pin at the ceiling, not wrap to zero.
        let policy = RetryPolicy::new(u32::MAX, 1, u64::MAX);
        assert_eq!(policy.backoff_ns(63), 1u64 << 62);
        assert_eq!(policy.backoff_ns(64), 1u64 << 63);
        assert_eq!(policy.backoff_ns(65), u64::MAX);
        assert_eq!(policy.backoff_ns(u32::MAX), u64::MAX);

        // A wide base saturates through the multiply, never wrapping.
        let wide = RetryPolicy::new(u32::MAX, u64::MAX / 2, u64::MAX);
        assert_eq!(wide.backoff_ns(2), u64::MAX - 1);
        assert_eq!(wide.backoff_ns(3), u64::MAX);
        assert_eq!(wide.backoff_ns(200), u64::MAX);

        // Monotone non-decreasing across the boundary region.
        let mut last = 0;
        for failed in 1..=70 {
            let b = policy.backoff_ns(failed);
            assert!(b >= last, "backoff regressed at attempt {failed}");
            last = b;
        }
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn a_zero_attempt_policy_is_rejected() {
        RetryPolicy::new(0, 1, 1);
    }

    #[test]
    fn faulty_engine_with_no_outages_matches_the_plain_engine() {
        let spec = diamond_spec();
        let payload = Bytes::from(vec![4u8; 2_000]);
        let compiled = CompiledWorkflow::compile(&spec).unwrap();

        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let mut res = SchedResources::new(1, 4);
        let plain =
            execute_compiled_at(&mut plane, &clock, &compiled, payload.clone(), &mut res, 100)
                .unwrap();

        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let mut res = SchedResources::new(1, 4);
        let outcome = execute_compiled_faulty_at(
            &mut plane,
            &clock,
            &compiled,
            payload,
            &mut res,
            100,
            &RetryPolicy::default(),
        )
        .unwrap();
        let FaultyOutcome::Completed { run, retries } = outcome else {
            panic!("fault-free resources cannot fail");
        };
        assert_eq!(retries, 0);
        assert_eq!(run.total_latency_ns, plain.total_latency_ns);
        for (a, b) in plain.edges.iter().zip(&run.edges) {
            assert_eq!(
                (a.start_ns, a.finish_ns, a.checksum()),
                (b.start_ns, b.finish_ns, b.checksum())
            );
        }
    }

    #[test]
    fn edges_retry_through_a_link_flap_and_account_the_attempts() {
        use std::sync::Arc;

        let clock = VirtualClock::new();
        let mut plane = SplitPlane { clock: clock.clone() };
        let spec = WorkflowSpec::sequence("wf", "t", ["src".to_owned(), "dst".to_owned()]);
        let compiled = CompiledWorkflow::compile(&spec).unwrap();
        let mut res = SchedResources::new(2, 4);
        // The 0–1 link is down for the first 2.5 µs; with a 1 µs base
        // backoff, attempt 1 (t=0) and attempt 2 (t=1 µs) fail, and
        // attempt 3 (t=1 µs + 2 µs = 3 µs) lands past the window.
        let id0 = res.node_id(0);
        let id1 = res.node_id(1);
        res.set_outages(Arc::new(
            roadrunner_vkernel::OutageSchedule::new().link_down(id0, id1, 0, 2_500),
        ));
        let policy = RetryPolicy::new(4, 1_000, 1 << 40);
        let outcome = execute_compiled_faulty_at(
            &mut plane,
            &clock,
            &compiled,
            Bytes::from_static(b"x"),
            &mut res,
            0,
            &policy,
        )
        .unwrap();
        let FaultyOutcome::Completed { run, retries } = outcome else {
            panic!("the flap ends before the budget does");
        };
        assert_eq!(retries, 2);
        assert_eq!(run.edges[0].start_ns, 3_000);
        assert_eq!(run.edges[0].finish_ns, 4_000);
    }

    #[test]
    fn a_killed_node_exhausts_the_retry_budget() {
        use std::sync::Arc;

        let clock = VirtualClock::new();
        let mut plane = SplitPlane { clock: clock.clone() };
        let spec = WorkflowSpec::sequence("wf", "t", ["src".to_owned(), "dst".to_owned()]);
        let compiled = CompiledWorkflow::compile(&spec).unwrap();
        let mut res = SchedResources::new(2, 4);
        let dead = res.node_id(1);
        res.set_outages(Arc::new(
            roadrunner_vkernel::OutageSchedule::new().node_killed(dead, 0),
        ));
        let policy = RetryPolicy::new(3, 1_000, 1 << 40);
        let outcome = execute_compiled_faulty_at(
            &mut plane,
            &clock,
            &compiled,
            Bytes::from_static(b"x"),
            &mut res,
            0,
            &policy,
        )
        .unwrap();
        let FaultyOutcome::Failed { failure, retries } = outcome else {
            panic!("a dead target cannot complete");
        };
        assert_eq!((failure.from.as_str(), failure.to.as_str()), ("src", "dst"));
        assert_eq!(failure.attempts, 3);
        assert_eq!(retries, 2);
        // Backoffs 1 µs then 2 µs: the engine gave up at t = 3 µs.
        assert_eq!(failure.failed_at_ns, 3_000);
        // Nothing was reserved: the pre-flight rejected every attempt.
        assert_eq!(res.cpu(0).reserved_ns(), 0);
        assert_eq!(res.cpu(1).reserved_ns(), 0);
    }

    #[test]
    fn a_mid_edge_window_wastes_the_placed_phases() {
        use std::sync::Arc;

        // A plane with all three phases: the window opens after prepare
        // but before the transfer phase's grant, so the attempt fails
        // with the prepare reservation already spent.
        struct ThreePhase {
            clock: VirtualClock,
        }
        impl DataPlane for ThreePhase {
            fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
                self.clock.advance(3_000);
                Ok(p)
            }
            fn transfer_detailed(
                &mut self,
                f: &str,
                t: &str,
                p: Bytes,
            ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
                let received = self.transfer(f, t, p)?;
                Ok((
                    received,
                    Some(TransferTiming {
                        prepare_ns: 1_000,
                        transfer_ns: 1_000,
                        consume_ns: 1_000,
                    }),
                ))
            }
            fn placement(&self, function: &str) -> Option<usize> {
                Some(usize::from(function != "src"))
            }
        }
        let clock = VirtualClock::new();
        let mut plane = ThreePhase { clock: clock.clone() };
        let spec = WorkflowSpec::sequence("wf", "t", ["src".to_owned(), "dst".to_owned()]);
        let compiled = CompiledWorkflow::compile(&spec).unwrap();
        let mut res = SchedResources::new(2, 4);
        let id0 = res.node_id(0);
        let id1 = res.node_id(1);
        // Link down [500, 4_000): up at t=0 (pre-flight passes), down at
        // t=1_000 when the transfer phase asks for the link.
        res.set_outages(Arc::new(
            roadrunner_vkernel::OutageSchedule::new().link_down(id0, id1, 500, 4_000),
        ));
        let policy = RetryPolicy::new(2, 4_000, 4_000);
        let outcome = execute_compiled_faulty_at(
            &mut plane,
            &clock,
            &compiled,
            Bytes::from_static(b"x"),
            &mut res,
            0,
            &policy,
        )
        .unwrap();
        let FaultyOutcome::Completed { run, retries } = outcome else {
            panic!("the retry lands after the window");
        };
        assert_eq!(retries, 1);
        // Attempt 2 at t=4_000 runs clean; the wasted prepare from
        // attempt 1 stays on node 0's CPU (2 × 1_000 prepare total).
        assert_eq!(run.edges[0].finish_ns, 7_000);
        assert_eq!(res.cpu(0).reserved_ns(), 2_000);
    }
}
