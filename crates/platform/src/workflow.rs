//! Workflow specifications and the execution engine.
//!
//! The paper evaluates the "most common invocation patterns" —
//! sequential chains, fan-out and fan-in (§6.1, citing the Berkeley
//! view). A [`WorkflowSpec`] names the pattern; [`execute`] drives the
//! transfers through whatever [`DataPlane`] the embedder provides
//! (Roadrunner's shim modes, or a baseline's HTTP path), recording
//! per-edge latency from the shared virtual clock.

use bytes::Bytes;
use roadrunner_vkernel::{Nanos, VirtualClock};

use crate::error::PlatformError;

/// Invocation pattern of a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// `f1 → f2 → … → fn`: each function's output feeds the next.
    Sequence(Vec<String>),
    /// One source delivers the same payload to every target.
    Fanout {
        /// Producing function.
        source: String,
        /// Consuming functions.
        targets: Vec<String>,
    },
    /// Every source delivers its payload to one target.
    FanIn {
        /// Producing functions.
        sources: Vec<String>,
        /// Consuming function.
        target: String,
    },
}

/// A named, tenant-scoped workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowSpec {
    /// Workflow name (used in bundle annotations).
    pub name: String,
    /// Owning tenant (Roadrunner's trust boundary).
    pub tenant: String,
    /// The invocation pattern.
    pub pattern: Pattern,
}

impl WorkflowSpec {
    /// Creates a sequential chain.
    pub fn sequence(
        name: impl Into<String>,
        tenant: impl Into<String>,
        functions: impl IntoIterator<Item = String>,
    ) -> Self {
        Self {
            name: name.into(),
            tenant: tenant.into(),
            pattern: Pattern::Sequence(functions.into_iter().collect()),
        }
    }

    /// Creates a fan-out.
    pub fn fanout(
        name: impl Into<String>,
        tenant: impl Into<String>,
        source: impl Into<String>,
        targets: impl IntoIterator<Item = String>,
    ) -> Self {
        Self {
            name: name.into(),
            tenant: tenant.into(),
            pattern: Pattern::Fanout {
                source: source.into(),
                targets: targets.into_iter().collect(),
            },
        }
    }

    /// All functions referenced by the pattern, in order, without
    /// duplicates.
    pub fn functions(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        let mut names: Vec<&str> = Vec::new();
        match &self.pattern {
            Pattern::Sequence(fs) => names.extend(fs.iter().map(String::as_str)),
            Pattern::Fanout { source, targets } => {
                names.push(source);
                names.extend(targets.iter().map(String::as_str));
            }
            Pattern::FanIn { sources, target } => {
                names.extend(sources.iter().map(String::as_str));
                names.push(target);
            }
        }
        for n in names {
            if !out.contains(&n) {
                out.push(n);
            }
        }
        out
    }

    /// Checks structural validity (enough functions for the pattern).
    ///
    /// # Errors
    ///
    /// [`PlatformError::InvalidWorkflow`] describing the problem.
    pub fn validate(&self) -> Result<(), PlatformError> {
        match &self.pattern {
            Pattern::Sequence(fs) if fs.len() < 2 => Err(PlatformError::InvalidWorkflow(
                "a sequence needs at least two functions".into(),
            )),
            Pattern::Fanout { targets, .. } if targets.is_empty() => Err(
                PlatformError::InvalidWorkflow("a fan-out needs at least one target".into()),
            ),
            Pattern::FanIn { sources, .. } if sources.is_empty() => Err(
                PlatformError::InvalidWorkflow("a fan-in needs at least one source".into()),
            ),
            _ => Ok(()),
        }
    }
}

/// The transport a workflow runs over: Roadrunner's shim modes or a
/// baseline's HTTP path. `transfer` moves `payload` from `from` to `to`
/// and returns the bytes as the target function received them.
pub trait DataPlane {
    /// Delivers `payload` from function `from` to function `to`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Transfer`] (or any other variant) when delivery
    /// fails.
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError>;
}

/// Timing and integrity record for one workflow edge.
#[derive(Debug, Clone)]
pub struct EdgeResult {
    /// Sending function.
    pub from: String,
    /// Receiving function.
    pub to: String,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Virtual time the transfer took.
    pub latency_ns: Nanos,
    /// The payload as received (reference-counted; cheap to hold).
    pub received: Bytes,
}

impl EdgeResult {
    /// FNV-1a checksum of the received payload, for integrity assertions.
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.received)
    }
}

/// Result of a workflow execution.
#[derive(Debug, Clone)]
pub struct WorkflowRun {
    /// Per-edge results in execution order.
    pub edges: Vec<EdgeResult>,
    /// Virtual time from first send to last receive.
    pub total_latency_ns: Nanos,
}

impl WorkflowRun {
    /// Sum of payload bytes moved across all edges.
    pub fn total_bytes(&self) -> usize {
        self.edges.iter().map(|e| e.bytes).sum()
    }
}

/// Executes `spec` over `plane`, timing each edge on `clock`.
///
/// Fan-out/fan-in branches are executed one after another in virtual
/// time; contended-parallel timing for the scalability figures comes from
/// [`roadrunner_vkernel::pipeline::run_fanout`], which models core and
/// link sharing analytically.
///
/// # Errors
///
/// Propagates validation and transfer errors.
pub fn execute(
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    spec: &WorkflowSpec,
    payload: Bytes,
) -> Result<WorkflowRun, PlatformError> {
    spec.validate()?;
    let started = clock.now();
    let mut edges = Vec::new();
    match &spec.pattern {
        Pattern::Sequence(fs) => {
            let mut current = payload;
            for pair in fs.windows(2) {
                let (from, to) = (&pair[0], &pair[1]);
                let t0 = clock.now();
                let received = plane.transfer(from, to, current.clone())?;
                edges.push(EdgeResult {
                    from: from.clone(),
                    to: to.clone(),
                    bytes: current.len(),
                    latency_ns: clock.now() - t0,
                    received: received.clone(),
                });
                current = received;
            }
        }
        Pattern::Fanout { source, targets } => {
            for target in targets {
                let t0 = clock.now();
                let received = plane.transfer(source, target, payload.clone())?;
                edges.push(EdgeResult {
                    from: source.clone(),
                    to: target.clone(),
                    bytes: payload.len(),
                    latency_ns: clock.now() - t0,
                    received,
                });
            }
        }
        Pattern::FanIn { sources, target } => {
            for source in sources {
                let t0 = clock.now();
                let received = plane.transfer(source, target, payload.clone())?;
                edges.push(EdgeResult {
                    from: source.clone(),
                    to: target.clone(),
                    bytes: payload.len(),
                    latency_ns: clock.now() - t0,
                    received,
                });
            }
        }
    }
    Ok(WorkflowRun { edges, total_latency_ns: clock.now() - started })
}

pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plane that passes payloads through unchanged, charging 1 µs per
    /// edge plus 1 ns per byte.
    struct PassThrough {
        clock: VirtualClock,
    }

    impl DataPlane for PassThrough {
        fn transfer(
            &mut self,
            _from: &str,
            _to: &str,
            payload: Bytes,
        ) -> Result<Bytes, PlatformError> {
            self.clock.advance(1_000 + payload.len() as u64);
            Ok(payload)
        }
    }

    #[test]
    fn sequence_chains_payloads() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = WorkflowSpec::sequence(
            "wf",
            "acme",
            ["a".to_owned(), "b".to_owned(), "c".to_owned()],
        );
        let run = execute(&mut plane, &clock, &spec, Bytes::from(vec![7u8; 100])).unwrap();
        assert_eq!(run.edges.len(), 2);
        assert_eq!(run.edges[0].from, "a");
        assert_eq!(run.edges[1].to, "c");
        assert_eq!(run.total_bytes(), 200);
        assert_eq!(run.total_latency_ns, 2 * (1_000 + 100));
        assert_eq!(run.edges[0].checksum(), run.edges[1].checksum());
    }

    #[test]
    fn fanout_delivers_to_every_target() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let targets: Vec<String> = (0..5).map(|i| format!("t{i}")).collect();
        let spec = WorkflowSpec::fanout("wf", "acme", "src", targets);
        let run = execute(&mut plane, &clock, &spec, Bytes::from_static(b"xy")).unwrap();
        assert_eq!(run.edges.len(), 5);
        assert!(run.edges.iter().all(|e| e.from == "src" && &e.received[..] == b"xy"));
    }

    #[test]
    fn fanin_collects_from_every_source() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = WorkflowSpec {
            name: "wf".into(),
            tenant: "acme".into(),
            pattern: Pattern::FanIn {
                sources: vec!["s1".into(), "s2".into()],
                target: "sink".into(),
            },
        };
        let run = execute(&mut plane, &clock, &spec, Bytes::from_static(b"z")).unwrap();
        assert_eq!(run.edges.len(), 2);
        assert!(run.edges.iter().all(|e| e.to == "sink"));
    }

    #[test]
    fn invalid_specs_rejected() {
        let clock = VirtualClock::new();
        let mut plane = PassThrough { clock: clock.clone() };
        let spec = WorkflowSpec::sequence("wf", "t", ["only".to_owned()]);
        assert!(matches!(
            execute(&mut plane, &clock, &spec, Bytes::new()),
            Err(PlatformError::InvalidWorkflow(_))
        ));
        let spec = WorkflowSpec::fanout("wf", "t", "src", Vec::<String>::new());
        assert!(spec.validate().is_err());
    }

    #[test]
    fn functions_lists_unique_names_in_order() {
        let spec = WorkflowSpec::sequence(
            "wf",
            "t",
            ["a".to_owned(), "b".to_owned(), "a".to_owned()],
        );
        assert_eq!(spec.functions(), vec!["a", "b"]);
        let spec = WorkflowSpec::fanout("wf", "t", "s", vec!["x".to_owned(), "y".to_owned()]);
        assert_eq!(spec.functions(), vec!["s", "x", "y"]);
    }

    #[test]
    fn transfer_errors_propagate() {
        struct Failing;
        impl DataPlane for Failing {
            fn transfer(&mut self, _: &str, _: &str, _: Bytes) -> Result<Bytes, PlatformError> {
                Err(PlatformError::Transfer("link down".into()))
            }
        }
        let clock = VirtualClock::new();
        let spec =
            WorkflowSpec::sequence("wf", "t", ["a".to_owned(), "b".to_owned()]);
        assert!(matches!(
            execute(&mut Failing, &clock, &spec, Bytes::new()),
            Err(PlatformError::Transfer(_))
        ));
    }
}
