//! Deployments: bundles bound to placements.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bundle::FunctionBundle;
use crate::error::PlatformError;
use crate::registry::FunctionRegistry;
use crate::scheduler::{Placement, Scheduler};

/// A function instance bound to a node.
#[derive(Debug, Clone)]
pub struct DeployedFunction {
    /// The deployed artifact.
    pub bundle: Arc<FunctionBundle>,
    /// Where the scheduler put it.
    pub placement: Placement,
}

/// The set of live function instances in a cluster.
#[derive(Debug, Default)]
pub struct Deployment {
    functions: HashMap<String, DeployedFunction>,
    node_count: usize,
}

impl Deployment {
    /// Creates an empty deployment over `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        Self { functions: HashMap::new(), node_count }
    }

    /// Deploys `name` from the registry using `scheduler` for placement.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownFunction`] if the registry has no bundle
    /// by that name.
    pub fn deploy(
        &mut self,
        registry: &FunctionRegistry,
        scheduler: &dyn Scheduler,
        name: &str,
    ) -> Result<&DeployedFunction, PlatformError> {
        let bundle = registry
            .get(name)
            .ok_or_else(|| PlatformError::UnknownFunction(name.to_owned()))?;
        let placement = scheduler.place(name, self.node_count);
        self.functions
            .insert(name.to_owned(), DeployedFunction { bundle, placement });
        Ok(self.functions.get(name).expect("just inserted"))
    }

    /// The instance of `name`, if deployed.
    pub fn get(&self, name: &str) -> Option<&DeployedFunction> {
        self.functions.get(name)
    }

    /// Placement of `name`, if deployed.
    pub fn placement_of(&self, name: &str) -> Option<Placement> {
        self.functions.get(name).map(|f| f.placement)
    }

    /// Whether both functions are deployed on the same node — the
    /// condition for Roadrunner's intra-node modes.
    pub fn colocated(&self, a: &str, b: &str) -> bool {
        match (self.placement_of(a), self.placement_of(b)) {
            (Some(pa), Some(pb)) => pa.node == pb.node,
            _ => false,
        }
    }

    /// Number of deployed functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Pinned;

    fn registry() -> FunctionRegistry {
        let reg = FunctionRegistry::new();
        reg.register(FunctionBundle::wasm("a", vec![0]));
        reg.register(FunctionBundle::wasm("b", vec![0]));
        reg.register(FunctionBundle::wasm("c", vec![0]));
        reg
    }

    #[test]
    fn deploy_places_functions() {
        let reg = registry();
        let sched = Pinned::new(0).pin("b", 1);
        let mut dep = Deployment::new(2);
        dep.deploy(&reg, &sched, "a").unwrap();
        dep.deploy(&reg, &sched, "b").unwrap();
        assert_eq!(dep.placement_of("a").unwrap().node, 0);
        assert_eq!(dep.placement_of("b").unwrap().node, 1);
        assert_eq!(dep.len(), 2);
    }

    #[test]
    fn unknown_function_errors() {
        let reg = registry();
        let sched = Pinned::new(0);
        let mut dep = Deployment::new(2);
        let err = dep.deploy(&reg, &sched, "missing").unwrap_err();
        assert!(matches!(err, PlatformError::UnknownFunction(_)));
    }

    #[test]
    fn colocation_detection() {
        let reg = registry();
        let sched = Pinned::new(0).pin("c", 1);
        let mut dep = Deployment::new(2);
        dep.deploy(&reg, &sched, "a").unwrap();
        dep.deploy(&reg, &sched, "b").unwrap();
        dep.deploy(&reg, &sched, "c").unwrap();
        assert!(dep.colocated("a", "b"));
        assert!(!dep.colocated("a", "c"));
        assert!(!dep.colocated("a", "missing"));
    }
}
