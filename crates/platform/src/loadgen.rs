//! Open-loop multi-tenant load generation.
//!
//! The paper evaluates one workflow at a time; a platform serves many at
//! once. This module admits a stream of workflow *instances* at a
//! configurable arrival rate onto **shared**
//! [`SchedResources`] timelines: each instance is placed by a
//! [`PlacementPolicy`], released at its arrival time via
//! [`execute_concurrent_at`],
//! and its edges reserve the same per-node core lanes and per-pair links
//! every other in-flight instance reserves — so independent instances
//! genuinely contend for cores and links in virtual time.
//!
//! The generator is *open-loop*: arrivals do not wait for completions
//! (the classic serverless traffic model — users do not coordinate), so
//! offered load can exceed capacity and queueing shows up as growing
//! sojourn times rather than a throttled arrival stream. Admission is
//! FIFO in arrival order: an earlier instance's reservations are placed
//! before a later instance's, the discipline of a work-conserving
//! platform queue.

use bytes::Bytes;
use roadrunner_vkernel::sched::SchedResources;
use roadrunner_vkernel::{Nanos, VirtualClock};

use crate::error::PlatformError;
use crate::metrics::{percentiles, PercentileSummary};
use crate::scheduler::{ClusterNodes, PlacementPolicy};
use crate::workflow::{execute_concurrent_at, DataPlane, TransferTiming, WorkflowSpec};

/// The inter-arrival process of an open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Deterministic arrivals every `interval_ns`.
    Uniform {
        /// Fixed inter-arrival gap.
        interval_ns: Nanos,
    },
    /// Poisson arrivals (exponential inter-arrival times) with the given
    /// mean, generated from a deterministic seed so runs replay
    /// identically.
    Poisson {
        /// Mean inter-arrival gap.
        mean_interval_ns: Nanos,
        /// PRNG seed.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// The first `count` arrival times (non-decreasing, starting at 0).
    pub fn times(&self, count: usize) -> Vec<Nanos> {
        match *self {
            ArrivalProcess::Uniform { interval_ns } => {
                (0..count as u64).map(|i| i * interval_ns).collect()
            }
            ArrivalProcess::Poisson { mean_interval_ns, seed } => {
                let mut state = seed;
                let mut at: Nanos = 0;
                (0..count)
                    .map(|_| {
                        let release = at;
                        // Inverse-transform sampling of Exp(1/mean) from a
                        // splitmix64 uniform draw.
                        let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                        let gap = -(1.0 - u).ln() * mean_interval_ns as f64;
                        at += gap.round() as Nanos;
                        release
                    })
                    .collect()
            }
        }
    }

    /// Mean inter-arrival gap (exact for uniform, the distribution mean
    /// for Poisson).
    pub fn mean_interval_ns(&self) -> Nanos {
        match *self {
            ArrivalProcess::Uniform { interval_ns } => interval_ns,
            ArrivalProcess::Poisson { mean_interval_ns, .. } => mean_interval_ns,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`DataPlane`] wrapper that overrides placement per workflow
/// instance — how a [`PlacementPolicy`]'s decision reaches the engine.
///
/// Transfers (and therefore costs and payload bytes) still go through
/// the wrapped plane; only [`DataPlane::placement`] answers from the
/// policy's assignment, so the instance's phases land on the scheduler
/// timelines of the nodes the policy chose.
pub struct Placed<'a> {
    inner: &'a mut dyn DataPlane,
    names: Vec<String>,
    nodes: Vec<usize>,
}

impl<'a> Placed<'a> {
    /// Wraps `inner`, mapping `spec`'s functions (in DAG node order) to
    /// `assignment`'s nodes.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover every function of `spec`.
    pub fn new(inner: &'a mut dyn DataPlane, spec: &WorkflowSpec, assignment: &[usize]) -> Self {
        let names: Vec<String> = spec.functions().iter().map(|&f| f.to_owned()).collect();
        assert_eq!(
            names.len(),
            assignment.len(),
            "assignment must cover every function of the workflow"
        );
        Self { inner, names, nodes: assignment.to_vec() }
    }
}

impl DataPlane for Placed<'_> {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.inner.transfer(from, to, payload)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        self.inner.transfer_detailed(from, to, payload)
    }

    fn placement(&self, function: &str) -> Option<usize> {
        self.names
            .iter()
            .position(|n| n == function)
            .map(|i| self.nodes[i])
            .or_else(|| self.inner.placement(function))
    }
}

/// One admitted workflow instance's outcome.
#[derive(Debug, Clone)]
pub struct InstanceOutcome {
    /// Instance index in admission order.
    pub instance: usize,
    /// Arrival (= release) time on the shared timescale.
    pub release_ns: Nanos,
    /// When the instance's last edge finished.
    pub finish_ns: Nanos,
    /// Sojourn time: `finish_ns - release_ns` (queueing + service).
    pub sojourn_ns: Nanos,
    /// The nodes the policy assigned, indexed by DAG node.
    pub assignment: Vec<usize>,
}

/// Aggregate result of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Per-instance outcomes in admission order.
    pub outcomes: Vec<InstanceOutcome>,
    /// First release to last finish — the horizon utilizations are
    /// normalized by.
    pub horizon_ns: Nanos,
    /// Offered arrival rate (instances per second of virtual time,
    /// `1 / mean inter-arrival gap`). Note that achieved throughput
    /// ([`LoadRun::throughput_rps`]) can slightly exceed this under
    /// light load with few instances: the horizon ends at the last
    /// *completion*, which then trails the last arrival by less than one
    /// inter-arrival gap.
    pub offered_rps: f64,
    /// Core-lane utilization over the horizon: Σ reserved CPU time /
    /// (total core lanes × horizon).
    pub cpu_utilization: f64,
    /// Link utilization over the horizon.
    pub link_utilization: f64,
}

impl LoadRun {
    /// Completed instances per second of virtual time over the horizon.
    pub fn throughput_rps(&self) -> f64 {
        if self.horizon_ns == 0 {
            return f64::INFINITY;
        }
        self.outcomes.len() as f64 * 1e9 / self.horizon_ns as f64
    }

    /// Sojourn-time percentile digest; `None` for an empty run.
    pub fn sojourn_percentiles(&self) -> Option<PercentileSummary> {
        let sojourns: Vec<Nanos> = self.outcomes.iter().map(|o| o.sojourn_ns).collect();
        percentiles(&sojourns)
    }

    /// The slowest instance's sojourn.
    pub fn max_sojourn_ns(&self) -> Nanos {
        self.outcomes.iter().map(|o| o.sojourn_ns).max().unwrap_or(0)
    }
}

/// An open-loop workload: `instances` copies of `spec` carrying
/// `payload`, admitted per `arrivals`.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    /// The workflow every instance runs.
    pub spec: WorkflowSpec,
    /// Payload injected into every instance's roots.
    pub payload: Bytes,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of instances to admit.
    pub instances: usize,
}

impl OpenLoop {
    /// Admits the workload onto `resources`, placing each instance with
    /// `policy` and driving every edge through `plane`.
    ///
    /// `resources` is *not* reset: callers own the timescale and may
    /// pre-load it (e.g. with background traffic). Utilizations are
    /// computed from the reservations this run added, over its own
    /// horizon.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        cluster: &ClusterNodes,
    ) -> Result<LoadRun, PlatformError> {
        let (cpu0, cpu_lanes) = resources.cpu_reserved();
        let (link0, link_lanes) = resources.link_reserved();
        let releases = self.arrivals.times(self.instances);
        let mut outcomes = Vec::with_capacity(self.instances);
        for (instance, &release_ns) in releases.iter().enumerate() {
            let assignment = policy.assign(&self.spec, cluster);
            let mut placed = Placed::new(plane, &self.spec, &assignment);
            let run = execute_concurrent_at(
                &mut placed,
                clock,
                &self.spec,
                self.payload.clone(),
                resources,
                release_ns,
            )?;
            outcomes.push(InstanceOutcome {
                instance,
                release_ns,
                finish_ns: release_ns + run.total_latency_ns,
                sojourn_ns: run.total_latency_ns,
                assignment,
            });
        }
        let first = outcomes.first().map(|o| o.release_ns).unwrap_or(0);
        let last = outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(first);
        let horizon_ns = last - first;
        let (cpu1, _) = resources.cpu_reserved();
        let (link1, _) = resources.link_reserved();
        let util = |used: Nanos, lanes: usize| {
            if horizon_ns == 0 || lanes == 0 {
                0.0
            } else {
                used as f64 / (lanes as f64 * horizon_ns as f64)
            }
        };
        let offered_rps = 1e9 / self.arrivals.mean_interval_ns().max(1) as f64;
        Ok(LoadRun {
            outcomes,
            horizon_ns,
            offered_rps,
            cpu_utilization: util(cpu1 - cpu0, cpu_lanes),
            link_utilization: util(link1 - link0, link_lanes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{LocalityFirst, SpreadLoad};
    use crate::workflow::execute_concurrent;

    /// A plane charging fixed phase costs, payload-independent, so
    /// schedules are easy to reason about.
    struct FixedPlane {
        clock: VirtualClock,
        prepare_ns: Nanos,
        transfer_ns: Nanos,
        consume_ns: Nanos,
    }

    impl FixedPlane {
        fn new(clock: VirtualClock) -> Self {
            Self { clock, prepare_ns: 200, transfer_ns: 1_000, consume_ns: 300 }
        }
    }

    impl DataPlane for FixedPlane {
        fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
            self.clock.advance(self.prepare_ns + self.transfer_ns + self.consume_ns);
            Ok(p)
        }

        fn transfer_detailed(
            &mut self,
            from: &str,
            to: &str,
            p: Bytes,
        ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
            let timing = TransferTiming {
                prepare_ns: self.prepare_ns,
                transfer_ns: self.transfer_ns,
                consume_ns: self.consume_ns,
            };
            let received = self.transfer(from, to, p)?;
            Ok((received, Some(timing)))
        }
    }

    fn pipeline_spec() -> WorkflowSpec {
        WorkflowSpec::sequence("pipe", "t", ["a".to_owned(), "b".to_owned()])
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let times = ArrivalProcess::Uniform { interval_ns: 250 }.times(4);
        assert_eq!(times, vec![0, 250, 500, 750]);
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_near_their_mean() {
        let process = ArrivalProcess::Poisson { mean_interval_ns: 1_000_000, seed: 7 };
        let a = process.times(400);
        let b = process.times(400);
        assert_eq!(a, b, "same seed must replay identically");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = a[399] as f64 / 399.0;
        assert!(
            (500_000.0..2_000_000.0).contains(&mean_gap),
            "empirical mean gap {mean_gap} too far from 1e6"
        );
        let other = ArrivalProcess::Poisson { mean_interval_ns: 1_000_000, seed: 8 }.times(400);
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn placed_overrides_placement_and_forwards_transfers() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let mut placed = Placed::new(&mut plane, &spec, &[2, 5]);
        assert_eq!(placed.placement("a"), Some(2));
        assert_eq!(placed.placement("b"), Some(5));
        assert_eq!(placed.placement("ghost"), None);
        let out = placed.transfer("a", "b", Bytes::from_static(b"xyz")).unwrap();
        assert_eq!(&out[..], b"xyz");
    }

    #[test]
    fn contention_never_speeds_an_instance_up() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let cluster = ClusterNodes::new(vec![1, 1]);

        // Uncontended makespan of one instance under locality placement.
        let mut fresh = SchedResources::heterogeneous(&[1, 1]);
        let mut placed = Placed::new(&mut plane, &spec, &[0, 0]);
        let solo = execute_concurrent(&mut placed, &clock, &spec, Bytes::new(), &mut fresh)
            .unwrap()
            .total_latency_ns;
        assert_eq!(solo, 1_500);

        // Heavy load: arrivals far faster than the 1-core nodes drain.
        let load = OpenLoop {
            spec: spec.clone(),
            payload: Bytes::new(),
            arrivals: ArrivalProcess::Uniform { interval_ns: 100 },
            instances: 12,
        };
        let mut shared = SchedResources::heterogeneous(&[1, 1]);
        let mut policy = LocalityFirst::new();
        let run =
            load.run(&mut plane, &clock, &mut shared, &mut policy, &cluster).unwrap();
        assert_eq!(run.outcomes.len(), 12);
        for outcome in &run.outcomes {
            assert!(
                outcome.sojourn_ns >= solo,
                "instance {} finished in {} < uncontended {}",
                outcome.instance,
                outcome.sojourn_ns,
                solo
            );
        }
        // Queueing builds: the last instance waits longer than the first.
        assert!(run.outcomes[11].sojourn_ns > run.outcomes[0].sojourn_ns);
        // Overload: achieved throughput falls short of offered.
        assert!(run.throughput_rps() < run.offered_rps);
    }

    #[test]
    fn light_load_leaves_instances_at_their_solo_makespan() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let cluster = ClusterNodes::new(vec![4, 4]);
        let load = OpenLoop {
            spec: spec.clone(),
            payload: Bytes::new(),
            arrivals: ArrivalProcess::Uniform { interval_ns: 1_000_000 },
            instances: 5,
        };
        let mut shared = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run =
            load.run(&mut plane, &clock, &mut shared, &mut policy, &cluster).unwrap();
        // Arrivals 1 ms apart, service 1.5 µs: nothing ever queues.
        assert!(run.outcomes.iter().all(|o| o.sojourn_ns == 1_500));
        let p = run.sojourn_percentiles().unwrap();
        assert_eq!((p.p50_ns, p.p95_ns, p.p99_ns), (1_500, 1_500, 1_500));
    }

    #[test]
    fn spread_policy_pays_the_link_locality_avoids() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let cluster = ClusterNodes::new(vec![4, 4]);
        let load = OpenLoop {
            spec: spec.clone(),
            payload: Bytes::new(),
            arrivals: ArrivalProcess::Uniform { interval_ns: 10_000 },
            instances: 4,
        };

        let mut res = SchedResources::new(2, 4);
        let mut locality = LocalityFirst::new();
        let packed =
            load.run(&mut plane, &clock, &mut res, &mut locality, &cluster).unwrap();
        assert!((packed.link_utilization - 0.0).abs() < f64::EPSILON);
        assert!(packed.cpu_utilization > 0.0);

        let mut res = SchedResources::new(2, 4);
        let mut spread = SpreadLoad::new();
        let crossed = load.run(&mut plane, &clock, &mut res, &mut spread, &cluster).unwrap();
        assert!(crossed.link_utilization > 0.0);
        // Every instance's a→b crosses nodes under spread.
        assert!(crossed.outcomes.iter().all(|o| o.assignment[0] != o.assignment[1]));
    }

    #[test]
    fn transfer_errors_propagate_out_of_the_loop() {
        struct Failing;
        impl DataPlane for Failing {
            fn transfer(&mut self, _: &str, _: &str, _: Bytes) -> Result<Bytes, PlatformError> {
                Err(PlatformError::Transfer("down".into()))
            }
        }
        let clock = VirtualClock::new();
        let load = OpenLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            arrivals: ArrivalProcess::Uniform { interval_ns: 1 },
            instances: 2,
        };
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let cluster = ClusterNodes::new(vec![4, 4]);
        assert!(matches!(
            load.run(&mut Failing, &clock, &mut res, &mut policy, &cluster),
            Err(PlatformError::Transfer(_))
        ));
    }
}
