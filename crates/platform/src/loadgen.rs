//! Multi-tenant load generation and the elastic control loop.
//!
//! The paper evaluates one workflow at a time; a platform serves many at
//! once. This module admits streams of workflow *instances* onto
//! **shared** [`SchedResources`] timelines through one completion-event
//! engine: every admission pops from a deterministic event queue, takes a
//! live [`ResourceView`] snapshot, asks the [`PlacementPolicy`] where the
//! instance goes, charges an optional cold start for functions landing on
//! a node for the first time, and executes the instance at its release
//! time via [`execute_compiled_at`](crate::workflow::execute_compiled_at)
//! (the spec is compiled **once per
//! run**, not once per arrival) — so every in-flight instance
//! contends for the same per-node core lanes and per-pair links in
//! virtual time. Completion events close the loop: they gate the next
//! arrival of a closed-loop user and give the [`Autoscaler`] its
//! observation points.
//!
//! Two drivers share the engine:
//!
//! * [`OpenLoop`] — arrivals do not wait for completions (the classic
//!   serverless traffic model — users do not coordinate), so offered
//!   load can exceed capacity and queueing shows up as growing sojourn
//!   times rather than a throttled arrival stream.
//! * [`ClosedLoop`] — N virtual users each keep exactly one instance in
//!   flight: a user's next arrival fires only after its previous
//!   instance completed plus a think time. Saturation throughput is
//!   measured directly instead of read off the achieved-vs-offered gap.
//!
//! Admission is FIFO in arrival order: an earlier instance's
//! reservations are placed before a later instance's, the discipline of
//! a work-conserving platform queue. The optional [`Autoscaler`] watches
//! the windowed backlog signal from the live view at every event and
//! grows/shrinks the active node set through the resizable
//! [`SchedResources`] — capacity changes mid-run, between instances.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use roadrunner_vkernel::sched::{EventQueue, ResourceView, SchedResources};
use roadrunner_vkernel::{Nanos, OutageSchedule, VirtualClock};

use crate::error::PlatformError;
use crate::metrics::{percentiles_sorted, PercentileSummary, StreamingPercentiles};
use crate::overload::{OverloadConfig, OverloadCtl, OverloadState, ShedPolicy};
use crate::scheduler::PlacementPolicy;
use crate::warmpool::{AdmissionConfig, Admitted, PoolStats, WarmPool};
use crate::workflow::{
    run_compiled_at, CompiledWorkflow, DataPlane, FaultyOutcome, RetryPolicy, TransferTiming,
    WorkflowSpec,
};

/// The inter-arrival process of an open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Deterministic arrivals every `interval_ns`.
    Uniform {
        /// Fixed inter-arrival gap.
        interval_ns: Nanos,
    },
    /// Poisson arrivals (exponential inter-arrival times) with the given
    /// mean, generated from a deterministic seed so runs replay
    /// identically.
    Poisson {
        /// Mean inter-arrival gap.
        mean_interval_ns: Nanos,
        /// PRNG seed.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// The first `count` arrival times (non-decreasing, starting at 0).
    pub fn times(&self, count: usize) -> Vec<Nanos> {
        match *self {
            ArrivalProcess::Uniform { interval_ns } => {
                (0..count as u64).map(|i| i * interval_ns).collect()
            }
            ArrivalProcess::Poisson { mean_interval_ns, seed } => {
                let mut state = seed;
                let mut at: Nanos = 0;
                (0..count)
                    .map(|_| {
                        let release = at;
                        // Inverse-transform sampling of Exp(1/mean) from a
                        // splitmix64 uniform draw.
                        let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                        let gap = -(1.0 - u).ln() * mean_interval_ns as f64;
                        at += gap.round() as Nanos;
                        release
                    })
                    .collect()
            }
        }
    }

    /// Mean inter-arrival gap (exact for uniform, the distribution mean
    /// for Poisson).
    pub fn mean_interval_ns(&self) -> Nanos {
        match *self {
            ArrivalProcess::Uniform { interval_ns } => interval_ns,
            ArrivalProcess::Poisson { mean_interval_ns, .. } => mean_interval_ns,
        }
    }

    /// The same process re-seeded — the replication seam the sweep
    /// engine uses to run one grid cell under several arrival seeds.
    /// Uniform arrivals carry no randomness and are returned unchanged.
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            ArrivalProcess::Uniform { .. } => self,
            ArrivalProcess::Poisson { mean_interval_ns, .. } => {
                ArrivalProcess::Poisson { mean_interval_ns, seed }
            }
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`DataPlane`] wrapper that overrides placement per workflow
/// instance — how a [`PlacementPolicy`]'s decision reaches the engine.
///
/// Transfers (and therefore costs and payload bytes) still go through
/// the wrapped plane; only [`DataPlane::placement`] answers from the
/// policy's assignment, so the instance's phases land on the scheduler
/// timelines of the nodes the policy chose.
pub struct Placed<'a> {
    inner: &'a mut dyn DataPlane,
    names: Vec<String>,
    nodes: Vec<usize>,
}

impl<'a> Placed<'a> {
    /// Wraps `inner`, mapping `spec`'s functions (in DAG node order) to
    /// `assignment`'s nodes.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover every function of `spec`.
    pub fn new(inner: &'a mut dyn DataPlane, spec: &WorkflowSpec, assignment: &[usize]) -> Self {
        let names: Vec<String> = spec.functions().iter().map(|&f| f.to_owned()).collect();
        assert_eq!(
            names.len(),
            assignment.len(),
            "assignment must cover every function of the workflow"
        );
        Self { inner, names, nodes: assignment.to_vec() }
    }
}

/// The one definition of assignment-override placement resolution,
/// shared by [`Placed`] and the engine-internal [`InstancePlane`]:
/// `function`'s position in `names` indexes `nodes`; unlisted functions
/// fall back to the wrapped plane's own placement.
fn assigned_placement(
    names: &[String],
    nodes: &[usize],
    inner: &dyn DataPlane,
    function: &str,
) -> Option<usize> {
    names
        .iter()
        .position(|n| n == function)
        .map(|i| nodes[i])
        .or_else(|| inner.placement(function))
}

impl DataPlane for Placed<'_> {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, payload).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        // Route through the placement-aware seam so the wrapped plane
        // derives the edge's transfer mode from the *instance's*
        // placement, not the deployment's static colocation. Planes
        // without placement-sensitive modes ignore the overrides.
        let src = self.placement(from);
        let dst = self.placement(to);
        self.inner.transfer_placed(from, to, payload, src, dst)
    }

    fn transfer_placed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
        src_node: Option<usize>,
        dst_node: Option<usize>,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let src = src_node.or_else(|| self.placement(from));
        let dst = dst_node.or_else(|| self.placement(to));
        self.inner.transfer_placed(from, to, payload, src, dst)
    }

    fn placement(&self, function: &str) -> Option<usize> {
        assigned_placement(&self.names, &self.nodes, self.inner, function)
    }

    fn set_health_epoch(&mut self, epoch: u64) {
        self.inner.set_health_epoch(epoch);
    }
}

/// The engine-internal, allocation-free sibling of [`Placed`]: borrows
/// the run-wide function-name list (computed once per run, not once per
/// instance) and the policy's assignment for this instance.
struct InstancePlane<'a, 'b> {
    inner: &'a mut dyn DataPlane,
    names: &'b [String],
    nodes: &'b [usize],
}

impl DataPlane for InstancePlane<'_, '_> {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, payload).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        // Same placement-aware routing as [`Placed`]: the instance's
        // assignment decides the mode, not the deployment's.
        let src = self.placement(from);
        let dst = self.placement(to);
        self.inner.transfer_placed(from, to, payload, src, dst)
    }

    fn placement(&self, function: &str) -> Option<usize> {
        assigned_placement(self.names, self.nodes, self.inner, function)
    }
}

/// A node kill in a [`FailurePlan`]: the node (by **stable id**, so the
/// schedule survives index reshuffling as the cluster resizes) dies at
/// `at_ns` and the control plane notices — and removes it from the
/// schedule — `detect_ns` later. Between those instants, instances
/// placed onto the dying node fail after exhausting their retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeKill {
    /// Stable node id ([`SchedResources::node_id`]).
    pub node_id: u64,
    /// Virtual instant the node dies (its outage window opens here).
    pub at_ns: Nanos,
    /// Detection delay before the dead node is removed from the
    /// resource schedule and its un-started backlog migrates.
    pub detect_ns: Nanos,
}

/// Everything the load engine needs to make a run fallible: an outage
/// schedule for link flaps and node down-windows, a list of node kills
/// (permanent outages with control-plane removal), and the retry policy
/// the workflow engine drives edges with.
///
/// An empty plan (`FailurePlan::new(..)` with nothing added) leaves the
/// engine byte-identical to a failure-free run.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    outages: OutageSchedule,
    kills: Vec<NodeKill>,
    retry: RetryPolicy,
}

impl FailurePlan {
    /// A plan with no outages yet, retrying per `retry`.
    pub fn new(retry: RetryPolicy) -> Self {
        Self { outages: OutageSchedule::new(), kills: Vec::new(), retry }
    }

    /// Adds a whole outage schedule (link flaps, transient node
    /// windows) on top of whatever the plan already holds.
    #[must_use]
    pub fn with_outages(mut self, outages: OutageSchedule) -> Self {
        self.outages = self.outages.merged_with(outages);
        self
    }

    /// Kills the node with stable id `node_id` at `at_ns`: its outage
    /// window opens immediately (transfers touching it start failing)
    /// and the engine removes it from the schedule `detect_ns` later.
    #[must_use]
    pub fn kill_node(mut self, node_id: u64, at_ns: Nanos, detect_ns: Nanos) -> Self {
        self.outages = self.outages.node_killed(node_id, at_ns);
        self.kills.push(NodeKill { node_id, at_ns, detect_ns });
        self
    }

    /// The outage schedule (kills included as never-ending windows).
    pub fn outages(&self) -> &OutageSchedule {
        &self.outages
    }

    /// The node kills, in insertion order.
    pub fn kills(&self) -> &[NodeKill] {
        &self.kills
    }

    /// The retry policy edges run under.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.kills.is_empty()
    }
}

/// One admitted workflow instance's outcome.
#[derive(Debug, Clone)]
pub struct InstanceOutcome {
    /// Instance index in admission order.
    pub instance: usize,
    /// The virtual user that issued the instance (equals `instance` for
    /// open-loop runs, the user slot for closed-loop runs).
    pub user: usize,
    /// Arrival time on the shared timescale.
    pub release_ns: Nanos,
    /// Cold-start delay charged before the instance's edges could start
    /// (0 when every function was already warm on its node).
    pub cold_start_ns: Nanos,
    /// Functions of this instance served warm out of the pool (always 0
    /// without pooled admission).
    pub pool_hits: u32,
    /// Functions of this instance that had to instantiate — full build
    /// or snapshot restore (always 0 without pooled admission).
    pub pool_misses: u32,
    /// When the instance's last edge finished.
    pub finish_ns: Nanos,
    /// Sojourn time: `finish_ns - release_ns` (cold start + queueing +
    /// service). For a failed instance this is time-in-system until the
    /// engine gave up.
    pub sojourn_ns: Nanos,
    /// The nodes the policy assigned, indexed by DAG node.
    pub assignment: Vec<usize>,
    /// Tenant (workload lane) index the instance belongs to; 0 for
    /// every single-tenant driver.
    pub tenant: usize,
    /// Whether the instance failed (an edge exhausted its retry budget
    /// under the run's [`FailurePlan`]). Always `false` without one.
    pub failed: bool,
    /// Whether the instance aborted on its overload-control deadline
    /// (distinct from `failed`: the work was shed as stale, not
    /// exhausted). Always `false` without a configured deadline.
    pub deadline_exceeded: bool,
    /// Failed edge attempts the instance absorbed (0 when every edge
    /// succeeded first try).
    pub retries: u32,
}

/// One autoscaler decision, for the scale-event trace the elastic
/// experiments emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// When the decision fired (virtual time).
    pub at_ns: Nanos,
    /// Direction.
    pub action: ScaleAction,
    /// Active node count after the action.
    pub nodes_after: usize,
    /// The windowed mean-backlog signal that triggered it.
    pub signal_ns: Nanos,
}

/// Direction of a scale event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// A node was added.
    Up,
    /// The last node was removed.
    Down,
    /// A node was added to replace capacity lost outside the
    /// controller's own decisions (a dead node the control plane
    /// removed). Replacement bypasses the decision cooldown — waiting a
    /// full window to restore known-lost capacity only deepens the
    /// backlog.
    Replace,
    /// A predictive pre-warm decision: the square-root staffing target
    /// rose and the warm pool was topped up ahead of demand. The node
    /// count is unchanged; `signal_ns` carries the new staffing target
    /// instead of a backlog signal.
    Prewarm,
}

/// Aggregate result of one load-generation run (open- or closed-loop).
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Per-instance outcomes in admission order.
    pub outcomes: Vec<InstanceOutcome>,
    /// First release to last finish — the horizon utilizations are
    /// normalized by. 0 for an empty run.
    pub horizon_ns: Nanos,
    /// Offered arrival rate (instances per second of virtual time,
    /// `1 / mean inter-arrival gap`) for open-loop runs; for closed-loop
    /// runs this equals the achieved rate (a closed loop offers exactly
    /// what completes). Note that achieved throughput
    /// ([`LoadRun::throughput_rps`]) can slightly exceed this under
    /// light open load with few instances: the horizon ends at the last
    /// *completion*, which then trails the last arrival by less than one
    /// inter-arrival gap.
    pub offered_rps: f64,
    /// Core-lane utilization over the horizon: Σ reserved CPU time
    /// divided by the **time-weighted** active core-lane capacity
    /// (∫ active lanes dt across the event timeline), so the figure
    /// stays comparable when an autoscaler resizes the cluster mid-run.
    /// For fixed capacity this reduces to the classic
    /// `reserved / (lanes × horizon)`.
    pub cpu_utilization: f64,
    /// Link utilization over the horizon (same time-weighted
    /// normalization).
    pub link_utilization: f64,
    /// The autoscaler's decision trace (empty without an autoscaler).
    pub scale_events: Vec<ScaleEvent>,
    /// Active node count when the run ended.
    pub final_nodes: usize,
    /// Instances that failed after exhausting their retries (0 without
    /// a [`FailurePlan`]). Conservation: `outcomes.len()` admitted ==
    /// completed + `failed` + `deadline_exceeded`.
    pub failed: usize,
    /// Arrivals the run saw, admitted or not. Conservation:
    /// `arrivals == outcomes.len() + shed`.
    pub arrivals: usize,
    /// Arrivals shed at the bounded admission queue (0 without an
    /// overload [`QueueConfig`](crate::overload::QueueConfig)).
    pub shed: usize,
    /// Instances that aborted on their overload-control deadline (0
    /// without a configured deadline).
    pub deadline_exceeded: usize,
    /// Per-tenant accounting, indexed by tenant lane; single-tenant
    /// drivers produce exactly one entry.
    pub tenants: Vec<TenantStats>,
    /// Failed edge attempts absorbed across all instances, completed
    /// ones included.
    pub retries: u64,
    /// Warm-pool accounting (hits, misses, restores, evictions,
    /// prewarms, idle residency); `None` without pooled admission.
    pub pool: Option<PoolStats>,
    /// Lazily sorted sojourn sample, so repeated percentile queries below
    /// the streaming threshold sort the run once instead of per call.
    /// Filled on the first [`sojourn_percentiles`](Self::sojourn_percentiles)
    /// call; callers that mutate `outcomes` afterwards (the engine never
    /// does) must treat the run as a new value — clone before mutating —
    /// or the cached digest goes stale.
    sorted_sojourns: std::sync::OnceLock<Vec<Nanos>>,
}

/// Instance-count threshold above which [`LoadRun::sojourn_percentiles`]
/// switches from the exact nearest-rank digest (sorts a full copy) to
/// the constant-space streaming P² digest.
pub const STREAMING_DIGEST_MIN: usize = 4_096;

impl LoadRun {
    /// Completed instances per second of virtual time over the horizon.
    ///
    /// Empty-run contract: an empty run reports `0.0` (nothing
    /// completed), and a non-empty run whose horizon is zero (every
    /// instance completed at its release instant) reports
    /// `f64::INFINITY` — so `0.0` always means "no throughput", never
    /// "instant throughput".
    pub fn throughput_rps(&self) -> f64 {
        if self.completed() == 0 {
            return 0.0;
        }
        if self.horizon_ns == 0 {
            return f64::INFINITY;
        }
        self.completed() as f64 * 1e9 / self.horizon_ns as f64
    }

    /// Instances that completed (admitted minus failed-after-retries
    /// minus deadline-exceeded aborts).
    pub fn completed(&self) -> usize {
        self.outcomes.len() - self.failed - self.deadline_exceeded
    }

    /// Instances that completed only after absorbing at least one
    /// retry.
    pub fn retried(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.failed && !o.deadline_exceeded && o.retries > 0)
            .count()
    }

    /// Sojourn-time percentile digest; `None` for an empty run. Uses the
    /// exact nearest-rank path below [`STREAMING_DIGEST_MIN`] instances
    /// and the streaming P² estimator at or above it (large runs would
    /// otherwise sort a full copy per call). The exact path caches its
    /// sorted sample in the run, so the second and later queries are
    /// rank lookups, not fresh sorts.
    pub fn sojourn_percentiles(&self) -> Option<PercentileSummary> {
        // Failed and deadline-exceeded instances never delivered: their
        // time-in-system is not a sojourn, so the digest covers
        // completed instances only (everything, in a run without
        // failures).
        if self.completed() >= STREAMING_DIGEST_MIN {
            let mut digest = StreamingPercentiles::new();
            for o in self.outcomes.iter().filter(|o| !o.failed && !o.deadline_exceeded) {
                digest.record(o.sojourn_ns);
            }
            digest.summary()
        } else {
            let sorted = self.sorted_sojourns.get_or_init(|| {
                let mut sojourns: Vec<Nanos> = self
                    .outcomes
                    .iter()
                    .filter(|o| !o.failed && !o.deadline_exceeded)
                    .map(|o| o.sojourn_ns)
                    .collect();
                sojourns.sort_unstable();
                sojourns
            });
            percentiles_sorted(sorted)
        }
    }

    /// The slowest instance's sojourn; `None` for an empty run (so an
    /// empty run is distinguishable from one whose slowest sojourn was
    /// genuinely zero).
    pub fn max_sojourn_ns(&self) -> Option<Nanos> {
        self.outcomes.iter().map(|o| o.sojourn_ns).max()
    }

    /// Total cold-start time charged across all instances.
    pub fn cold_start_total_ns(&self) -> Nanos {
        self.outcomes.iter().map(|o| o.cold_start_ns).sum()
    }

    /// Number of instances that paid a nonzero cold start.
    pub fn cold_starts(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cold_start_ns > 0).count()
    }
}

/// Per-tenant accounting of one load run: arrival/outcome conservation
/// counters plus a streaming sojourn digest of the tenant's completed
/// instances. Per-tenant digests merge into run-level rollups with
/// [`StreamingPercentiles::merge`].
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name (from [`TenantLoad::name`]; the spec's tenant for
    /// single-tenant drivers).
    pub name: String,
    /// Arrivals the tenant offered, admitted or not. Conservation:
    /// `arrivals == completed + failed + deadline_exceeded + shed`.
    pub arrivals: usize,
    /// Instances that completed.
    pub completed: usize,
    /// Instances that failed after exhausting retries.
    pub failed: usize,
    /// Instances that aborted on their deadline.
    pub deadline_exceeded: usize,
    /// Arrivals shed at the admission queue.
    pub shed: usize,
    /// Streaming sojourn digest over the tenant's completed instances
    /// (queue wait included).
    pub digest: StreamingPercentiles,
}

impl TenantStats {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            arrivals: 0,
            completed: 0,
            failed: 0,
            deadline_exceeded: 0,
            shed: 0,
            digest: StreamingPercentiles::new(),
        }
    }

    /// Sojourn-percentile digest of the tenant's completed instances;
    /// `None` when nothing completed.
    pub fn sojourn_percentiles(&self) -> Option<PercentileSummary> {
        self.digest.summary()
    }
}

/// One tenant's workload in a [`MultiLoad`] run: a workflow spec, its
/// payload, an explicit release trace, and a fair-share weight for the
/// weighted-round-robin admission queue.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Tenant name, carried into [`TenantStats::name`].
    pub name: String,
    /// The workflow every instance of this tenant runs.
    pub spec: WorkflowSpec,
    /// Payload injected into every instance's roots.
    pub payload: Bytes,
    /// Explicit arrival instants (non-decreasing). An explicit trace —
    /// rather than an [`ArrivalProcess`] — lets a tenant model
    /// multi-phase shapes (pre-burst / burst / recovery) directly.
    pub releases: Vec<Nanos>,
    /// Fair-share weight at the admission queue (≥ 1; a weight-4 tenant
    /// dequeues 4× as often as a weight-1 tenant when both are backed
    /// up).
    pub weight: u64,
}

impl TenantLoad {
    /// A tenant generating `instances` arrivals from `arrivals`.
    pub fn from_process(
        name: impl Into<String>,
        spec: WorkflowSpec,
        payload: Bytes,
        arrivals: &ArrivalProcess,
        instances: usize,
    ) -> Self {
        Self {
            name: name.into(),
            spec,
            payload,
            releases: arrivals.times(instances),
            weight: 1,
        }
    }
}

/// A multi-tenant open-loop workload: every tenant's release trace is
/// interleaved onto the **shared** timelines (stable-ordered by time,
/// ties by tenant index), each instance runs its own tenant's spec and
/// payload, and per-tenant warmth never aliases — each tenant gets its
/// own admission lane, so one tenant's warm instances are invisible to
/// another's (the paper's per-tenant trust boundary).
///
/// Combined with an overload [`QueueConfig`](crate::overload::QueueConfig),
/// the weighted admission queue is the fairness lever the ROADMAP's
/// multi-tenant item calls for: an adversarial tenant's backlog queues
/// behind its own weight instead of starving everyone.
#[derive(Debug, Clone)]
pub struct MultiLoad {
    /// The tenants, in lane order.
    pub tenants: Vec<TenantLoad>,
    /// Cold-start admission model, applied per tenant lane.
    pub admission: AdmissionConfig,
}

impl MultiLoad {
    /// Drives all tenants onto `resources` without overload control
    /// (every knob off).
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
    ) -> Result<LoadRun, PlatformError> {
        self.run_overloaded(plane, clock, resources, policy, None, None, &OverloadConfig::default())
    }

    /// [`run`](Self::run) with the full stack in the loop: optional
    /// autoscaler, optional failure plan, and the overload-control
    /// configuration (deadlines, retry budgets, breakers, bounded
    /// queues with weighted-fair shedding).
    ///
    /// # Errors
    ///
    /// Propagates the first validation or non-fault transfer error.
    #[allow(clippy::too_many_arguments)]
    pub fn run_overloaded(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
        failures: Option<&FailurePlan>,
        overload: &OverloadConfig,
    ) -> Result<LoadRun, PlatformError> {
        let mut releases: Vec<(Nanos, usize, usize)> = Vec::new();
        for (tenant, load) in self.tenants.iter().enumerate() {
            for (user, &at) in load.releases.iter().enumerate() {
                releases.push((at, tenant, user));
            }
        }
        // Stable by time: equal instants keep tenant order, so the
        // interleaving is deterministic.
        releases.sort_by_key(|&(at, _, _)| at);
        let work: Vec<TenantWork<'_>> = self
            .tenants
            .iter()
            .map(|t| TenantWork {
                name: &t.name,
                spec: &t.spec,
                payload: &t.payload,
                weight: t.weight.max(1),
            })
            .collect();
        drive(
            &work,
            Admission::Multi { releases },
            &self.admission,
            plane,
            clock,
            resources,
            policy,
            autoscaler,
            failures,
            overload,
        )
    }
}

/// An open-loop workload: `instances` copies of `spec` carrying
/// `payload`, admitted per `arrivals`.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    /// The workflow every instance runs.
    pub spec: WorkflowSpec,
    /// Payload injected into every instance's roots.
    pub payload: Bytes,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of instances to admit.
    pub instances: usize,
    /// How instances are admitted: all-warm, the legacy fig. 2a
    /// warm-set model, or a warm pool with keep-alive eviction (see
    /// [`AdmissionConfig`]).
    pub admission: AdmissionConfig,
}

impl OpenLoop {
    /// Admits the workload onto `resources`, placing each instance with
    /// `policy` and driving every edge through `plane`.
    ///
    /// `resources` is *not* reset: callers own the timescale and may
    /// pre-load it (e.g. with background traffic). Utilizations are
    /// computed from the reservations this run added, over its own
    /// horizon.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
    ) -> Result<LoadRun, PlatformError> {
        self.run_elastic(plane, clock, resources, policy, None)
    }

    /// [`run`](Self::run) with an [`Autoscaler`] in the loop: capacity
    /// grows and shrinks between instances as the controller reacts to
    /// the live backlog signal.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run_elastic(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
    ) -> Result<LoadRun, PlatformError> {
        self.run_with_failures(plane, clock, resources, policy, autoscaler, None)
    }

    /// [`run_elastic`](Self::run_elastic) under a [`FailurePlan`]:
    /// outages reject reservations, edges retry with backoff, dead
    /// nodes are removed (and, with an autoscaler, replaced). With
    /// `None` — or an empty plan — the run is byte-identical to
    /// [`run_elastic`](Self::run_elastic).
    ///
    /// # Errors
    ///
    /// Propagates the first validation or non-fault transfer error;
    /// outage-induced failures become failed outcomes, not errors.
    pub fn run_with_failures(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
        failures: Option<&FailurePlan>,
    ) -> Result<LoadRun, PlatformError> {
        self.run_overloaded(
            plane,
            clock,
            resources,
            policy,
            autoscaler,
            failures,
            &OverloadConfig::default(),
        )
    }

    /// [`run_with_failures`](Self::run_with_failures) under an
    /// [`OverloadConfig`]: deadlines, retry budgets, circuit breakers
    /// and bounded-queue shedding. The default (all-off) config is
    /// byte-identical to [`run_with_failures`](Self::run_with_failures).
    ///
    /// # Errors
    ///
    /// Propagates the first validation or non-fault transfer error.
    #[allow(clippy::too_many_arguments)]
    pub fn run_overloaded(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
        failures: Option<&FailurePlan>,
        overload: &OverloadConfig,
    ) -> Result<LoadRun, PlatformError> {
        let work = [TenantWork {
            name: &self.spec.tenant,
            spec: &self.spec,
            payload: &self.payload,
            weight: 1,
        }];
        drive(
            &work,
            Admission::Open {
                releases: self.arrivals.times(self.instances),
                mean_interval_ns: self.arrivals.mean_interval_ns(),
            },
            &self.admission,
            plane,
            clock,
            resources,
            policy,
            autoscaler,
            failures,
            overload,
        )
    }
}

/// A closed-loop workload: `users` virtual users each keep one instance
/// of `spec` in flight, thinking for `think_ns` between a completion and
/// their next request, until `instances` total have completed.
///
/// Concurrency is bounded by construction — at most `users` instances
/// ever overlap — and each user's arrivals are gated on its own
/// completions, so throughput saturates at what the cluster actually
/// sustains (the directly measured saturation throughput the elastic
/// experiments report).
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    /// The workflow every instance runs.
    pub spec: WorkflowSpec,
    /// Payload injected into every instance's roots.
    pub payload: Bytes,
    /// Number of concurrent virtual users.
    pub users: usize,
    /// Think time between a user's completion and its next arrival.
    pub think_ns: Nanos,
    /// Ramp-up stagger: user `u`'s first arrival fires at `u × ramp_ns`
    /// (0 starts every user at once). Ramping is how closed-loop
    /// harnesses avoid measuring the artificial thundering herd of a
    /// simultaneous start instead of steady-state queueing.
    pub ramp_ns: Nanos,
    /// Total instances to admit across all users.
    pub instances: usize,
    /// How instances are admitted: all-warm, the legacy fig. 2a
    /// warm-set model, or a warm pool with keep-alive eviction (see
    /// [`AdmissionConfig`]).
    pub admission: AdmissionConfig,
}

impl ClosedLoop {
    /// Drives the closed loop onto `resources` (see [`OpenLoop::run`]
    /// for the sharing semantics).
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
    ) -> Result<LoadRun, PlatformError> {
        self.run_elastic(plane, clock, resources, policy, None)
    }

    /// [`run`](Self::run) with an [`Autoscaler`] in the loop.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run_elastic(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
    ) -> Result<LoadRun, PlatformError> {
        self.run_with_failures(plane, clock, resources, policy, autoscaler, None)
    }

    /// [`run_elastic`](Self::run_elastic) under a [`FailurePlan`] (see
    /// [`OpenLoop::run_with_failures`]). Failed instances still re-arm
    /// their virtual user — a closed-loop client retries elsewhere
    /// after an error page, it does not stop existing.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or non-fault transfer error.
    pub fn run_with_failures(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
        failures: Option<&FailurePlan>,
    ) -> Result<LoadRun, PlatformError> {
        self.run_overloaded(
            plane,
            clock,
            resources,
            policy,
            autoscaler,
            failures,
            &OverloadConfig::default(),
        )
    }

    /// [`run_with_failures`](Self::run_with_failures) under an
    /// [`OverloadConfig`] (see [`OpenLoop::run_overloaded`]). The
    /// default (all-off) config is byte-identical.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or non-fault transfer error.
    #[allow(clippy::too_many_arguments)]
    pub fn run_overloaded(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
        failures: Option<&FailurePlan>,
        overload: &OverloadConfig,
    ) -> Result<LoadRun, PlatformError> {
        assert!(self.users > 0, "a closed loop needs at least one user");
        let work = [TenantWork {
            name: &self.spec.tenant,
            spec: &self.spec,
            payload: &self.payload,
            weight: 1,
        }];
        drive(
            &work,
            Admission::Closed {
                users: self.users,
                think_ns: self.think_ns,
                ramp_ns: self.ramp_ns,
                instances: self.instances,
            },
            &self.admission,
            plane,
            clock,
            resources,
            policy,
            autoscaler,
            failures,
            overload,
        )
    }
}

/// One tenant's share of a [`drive`] call: the spec/payload to run and
/// the fair-share weight. Single-tenant drivers pass exactly one.
struct TenantWork<'a> {
    name: &'a str,
    spec: &'a WorkflowSpec,
    payload: &'a Bytes,
    weight: u64,
}

/// How the engine admits instances.
enum Admission {
    /// Pre-scheduled arrival times (instance k = user k, tenant 0).
    Open { releases: Vec<Nanos>, mean_interval_ns: Nanos },
    /// `users` slots seeded `ramp_ns` apart, each re-arming `think_ns`
    /// after its completion, until `instances` total have been admitted.
    Closed { users: usize, think_ns: Nanos, ramp_ns: Nanos, instances: usize },
    /// Pre-merged multi-tenant release trace: `(at, tenant, user)`,
    /// non-decreasing in time.
    Multi { releases: Vec<(Nanos, usize, usize)> },
}

/// Engine events: an instance arriving for admission, one completing
/// (or failing — failed instances re-arm their closed-loop user too),
/// or the control plane removing a node it detected dead.
enum LoadEvent {
    Arrival { tenant: usize, user: usize },
    Completion { user: usize, instance: usize },
    NodeKill { node_id: u64 },
}

/// The engine's per-run admission state, resolved once from an
/// [`AdmissionConfig`] — the single home of the cold-start wiring that
/// [`OpenLoop`] and [`ClosedLoop`] used to duplicate.
enum AdmissionState {
    /// No cold starts: every instance admits at its arrival instant.
    AllWarm,
    /// The legacy fig. 2a model: the first (function, node) landing
    /// pays the full cost and the pair stays warm for the whole run.
    WarmSet { cold_ns: Nanos, warm: std::collections::HashSet<(usize, usize)> },
    /// Warm-pool admission with keep-alive eviction (and, with a
    /// prewarm-configured [`Autoscaler`], predictive pre-warming).
    Pool(Box<WarmPool>),
}

impl AdmissionState {
    fn new(cfg: &AdmissionConfig, functions: usize) -> Self {
        match (cfg.cold_start_ns, &cfg.pool) {
            (None, _) => Self::AllWarm,
            (Some(cold_ns), None) => {
                Self::WarmSet { cold_ns, warm: std::collections::HashSet::new() }
            }
            (Some(cold_ns), Some(pool)) => {
                Self::Pool(Box::new(WarmPool::new(cold_ns, pool.clone(), functions)))
            }
        }
    }

    /// Admits one instance at `now`: charges whatever instantiation the
    /// policy requires on the nodes' CPU timelines and returns the
    /// (possibly delayed) release instant plus pool accounting.
    fn admit(
        &mut self,
        now: Nanos,
        assignment: &[usize],
        resources: &mut SchedResources,
    ) -> Admitted {
        match self {
            Self::AllWarm => Admitted { release_ns: now, hits: 0, misses: 0 },
            Self::WarmSet { cold_ns, warm } => {
                let mut release = now;
                let cold = *cold_ns;
                for (fi, &node) in assignment.iter().enumerate() {
                    if warm.insert((fi, node)) {
                        let start = resources.cpu(node).reserve(now, cold);
                        release = release.max(start + cold);
                    }
                }
                Admitted { release_ns: release, hits: 0, misses: 0 }
            }
            Self::Pool(pool) => pool.admit(now, assignment, resources),
        }
    }

    /// A completed instance hands its warm functions back (pool only —
    /// the warm set never gives anything back by construction).
    fn complete(&mut self, finish: Nanos, assignment: &[usize]) {
        if let Self::Pool(pool) = self {
            pool.complete(finish, assignment);
        }
    }

    /// Scale-in to `nodes` survivors: warmth on dropped indices dies
    /// with them (a re-added index is a brand-new machine).
    fn shrink_to(&mut self, nodes: usize, now: Nanos) {
        match self {
            Self::AllWarm => {}
            Self::WarmSet { warm, .. } => warm.retain(|&(_, node)| node < nodes),
            Self::Pool(pool) => pool.shrink_to(nodes, now),
        }
    }

    /// A kill removed `victim` mid-run: its warmth dies, survivors
    /// above it shift down one index.
    fn remove_node(&mut self, victim: usize, now: Nanos) {
        match self {
            Self::AllWarm => {}
            Self::WarmSet { warm, .. } => {
                *warm = warm
                    .iter()
                    .filter_map(|&(fi, n)| match n.cmp(&victim) {
                        std::cmp::Ordering::Less => Some((fi, n)),
                        std::cmp::Ordering::Equal => None,
                        std::cmp::Ordering::Greater => Some((fi, n - 1)),
                    })
                    .collect();
            }
            Self::Pool(pool) => pool.remove_node(victim, now),
        }
    }

    /// Settles keep-alive fates at the run horizon and surrenders the
    /// pool's accounting (None off the pool path).
    fn finalize(self, end: Nanos) -> Option<PoolStats> {
        match self {
            Self::Pool(pool) => Some(pool.finalize(end)),
            _ => None,
        }
    }
}

/// One tenant's per-run lane: the compiled spec, interned names, its
/// own admission state (per-tenant warmth never aliases — the paper's
/// per-tenant trust boundary), and its slice of the bounded admission
/// queue.
struct Lane<'a> {
    spec: &'a WorkflowSpec,
    payload: &'a Bytes,
    compiled: CompiledWorkflow<'a>,
    fn_names: Vec<String>,
    weight: u64,
    admission_state: AdmissionState,
    /// Queued-but-not-admitted arrivals: `(user, arrival_ns)` in FIFO
    /// order (only populated under an overload queue config).
    queued: VecDeque<(usize, Nanos)>,
}

/// The run-wide mutable counters threaded through [`start_instance`].
struct Counters {
    failed: usize,
    deadline_exceeded: usize,
    retries: u64,
    in_flight: usize,
}

/// Admits and executes one instance of `lane` at `start_ns` (its
/// arrival was at `arrival_ns`; they differ only for instances that
/// waited in the bounded queue). The one definition of the
/// place → admit → execute → account sequence, shared by the direct
/// arrival path and the queue-drain path — its mutation order against
/// `resources`/`policy`/`plane` is exactly the pre-overload engine's,
/// which is what keeps the all-knobs-off run byte-identical.
#[allow(clippy::too_many_arguments)]
fn start_instance(
    lane: &mut Lane<'_>,
    stats: &mut TenantStats,
    tenant: usize,
    user: usize,
    arrival_ns: Nanos,
    start_ns: Nanos,
    view_is_fresh: bool,
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    resources: &mut SchedResources,
    policy: &mut dyn PlacementPolicy,
    view: &mut ResourceView,
    faults: Option<&RetryPolicy>,
    overload: &OverloadConfig,
    overload_state: &mut OverloadState,
    counters: &mut Counters,
    outcomes: &mut Vec<InstanceOutcome>,
    queue: &mut EventQueue<LoadEvent>,
) -> Result<(), PlatformError> {
    if !view_is_fresh {
        resources.view_into(start_ns, view);
    }
    // Open circuits push their nodes' apparent backlog up before the
    // policy looks — placement steers away without any policy change.
    overload_state.penalize_view(start_ns, view);
    let assignment = policy.place(lane.spec, view);
    // Charge instantiation: warm-set misses reserve the fig2a-style
    // full cost on the node's CPU; pool misses pay their tier (full
    // build or snapshot restore) while hits admit warm. Either way a
    // charged instance's release is delayed past the work.
    let admitted = lane.admission_state.admit(start_ns, &assignment, resources);
    let release = admitted.release_ns;
    let mut placed = InstancePlane { inner: plane, names: &lane.fn_names, nodes: &assignment };
    // The overload control block rides along only when a knob is on:
    // the all-off engine path must not even construct it.
    let ctl = if overload.is_off() {
        None
    } else {
        Some(OverloadCtl {
            tenant,
            deadline_ns: overload.deadline_ns.map(|d| arrival_ns.saturating_add(d)),
            state: overload_state,
        })
    };
    let outcome = run_compiled_at(
        &mut placed,
        clock,
        &lane.compiled,
        lane.payload.clone(),
        resources,
        release,
        faults,
        ctl,
    )?;
    let instance = outcomes.len();
    let (finish, failed, deadline_exceeded, retries) = match outcome {
        FaultyOutcome::Completed { run, retries } => {
            (release + run.total_latency_ns, false, false, retries)
        }
        // Failed instances still produce a completion event: the
        // closed-loop user saw an error and re-arms.
        FaultyOutcome::Failed { failure, retries } => {
            counters.failed += 1;
            stats.failed += 1;
            (failure.failed_at_ns.max(release), true, false, retries)
        }
        // Deadline aborts are shed-as-stale, not failures; they too
        // produce a completion event (the user saw a timeout).
        FaultyOutcome::DeadlineExceeded { at_ns, retries } => {
            counters.deadline_exceeded += 1;
            stats.deadline_exceeded += 1;
            (at_ns.max(release), false, true, retries)
        }
    };
    counters.retries += u64::from(retries);
    if !failed && !deadline_exceeded {
        stats.completed += 1;
        stats.digest.record(finish - arrival_ns);
    }
    outcomes.push(InstanceOutcome {
        instance,
        user,
        release_ns: arrival_ns,
        cold_start_ns: release - start_ns,
        pool_hits: admitted.hits,
        pool_misses: admitted.misses,
        finish_ns: finish,
        sojourn_ns: finish - arrival_ns,
        assignment,
        tenant,
        failed,
        deadline_exceeded,
        retries,
    });
    counters.in_flight += 1;
    queue.push(finish, LoadEvent::Completion { user, instance });
    Ok(())
}

/// The shared completion-event engine behind [`OpenLoop`],
/// [`ClosedLoop`] and [`MultiLoad`].
///
/// Events drain in deterministic time order (FIFO among equals). Each
/// arrival snapshots the live view, places, charges cold starts, and
/// executes the instance at its release; each completion re-arms its
/// closed-loop user and drains the bounded admission queue (when one is
/// configured) in smooth weighted-round-robin tenant order. The
/// autoscaler (when present) observes at *every* event, so it sees both
/// pressure building (arrivals) and draining (completions).
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn drive(
    tenants: &[TenantWork<'_>],
    admission: Admission,
    admission_cfg: &AdmissionConfig,
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    resources: &mut SchedResources,
    policy: &mut dyn PlacementPolicy,
    mut autoscaler: Option<&mut Autoscaler>,
    failures: Option<&FailurePlan>,
    overload: &OverloadConfig,
) -> Result<LoadRun, PlatformError> {
    let (cpu0, _) = resources.cpu_reserved();
    let (link0, _) = resources.link_reserved();

    // Arm the failure plan: attach the outage schedule (timelines start
    // rejecting reservations inside down windows) and note the retry
    // policy the fault-aware engine drives edges with. `None` keeps
    // every `try_reserve_*` on the plain-reservation path.
    let faults: Option<&RetryPolicy> = match failures {
        Some(plan) => {
            resources.set_outages(Arc::new(plan.outages().clone()));
            Some(plan.retry())
        }
        None => None,
    };

    // Per-run precomputation, per tenant lane: validate/topo-sort each
    // spec once for every instance (the compiled form), and intern the
    // function-name list the placement override needs — neither is
    // per-arrival work. Each lane owns its admission state, so one
    // tenant's warmth is invisible to another's.
    let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(tenants.len());
    let mut tenant_stats: Vec<TenantStats> = Vec::with_capacity(tenants.len());
    for t in tenants {
        let compiled = CompiledWorkflow::compile(t.spec)?;
        let fn_names: Vec<String> = t.spec.functions().iter().map(|&f| f.to_owned()).collect();
        let admission_state = AdmissionState::new(admission_cfg, fn_names.len());
        lanes.push(Lane {
            spec: t.spec,
            payload: t.payload,
            compiled,
            fn_names,
            weight: t.weight.max(1),
            admission_state,
            queued: VecDeque::new(),
        });
        tenant_stats.push(TenantStats::new(t.name));
    }
    // Budget buckets and breaker circuits for the whole run.
    let mut overload_state = OverloadState::new(overload);
    // Smooth weighted-round-robin credit per tenant lane (the
    // queue-drain fairness state).
    let mut wrr_credit: Vec<i128> = vec![0; lanes.len()];
    // Scratch snapshot refreshed in place at every observation point:
    // the per-event view is allocation-free in steady state.
    let mut view = ResourceView::default();

    let mut queue: EventQueue<LoadEvent> = EventQueue::new();
    // Kill-removal events go in before any arrival, so at equal times
    // the control plane acts first (FIFO among equals).
    if let Some(plan) = failures {
        for kill in plan.kills() {
            queue.push(
                kill.at_ns.saturating_add(kill.detect_ns),
                LoadEvent::NodeKill { node_id: kill.node_id },
            );
        }
    }
    // Closed-loop admission bookkeeping: how many instances have been
    // admitted so far, against the total bound.
    let (mut admitted, instance_bound, think_ns) = match &admission {
        Admission::Open { releases, .. } => {
            for (user, &at) in releases.iter().enumerate() {
                queue.push(at, LoadEvent::Arrival { tenant: 0, user });
            }
            (releases.len(), releases.len(), 0)
        }
        Admission::Closed { users, think_ns, ramp_ns, instances } => {
            let seed = (*users).min(*instances);
            for user in 0..seed {
                queue.push(user as Nanos * ramp_ns, LoadEvent::Arrival { tenant: 0, user });
            }
            (seed, *instances, *think_ns)
        }
        Admission::Multi { releases } => {
            for &(at, tenant, user) in releases {
                queue.push(at, LoadEvent::Arrival { tenant, user });
            }
            (releases.len(), releases.len(), 0)
        }
    };
    let mut outcomes: Vec<InstanceOutcome> = Vec::new();
    let mut counters =
        Counters { failed: 0, deadline_exceeded: 0, retries: 0, in_flight: 0 };
    let mut arrivals_total: usize = 0;
    let mut shed_total: usize = 0;
    // Queued arrivals across all lanes (kept incrementally so the
    // overflow check is O(1)).
    let mut queued_total: usize = 0;
    // Link-health epoch last pushed into the plane (see the memo): only
    // transitions move it, so a failure-free run never calls the hook.
    let mut last_epoch: u64 = 0;
    let mut known_nodes = resources.node_count();
    // Time-weighted active-lane capacity (∫ lanes dt over the event
    // timeline) — the utilization denominators under elastic capacity.
    // Lane counts only change at scale events, so they are cached and
    // refreshed when the node count moves.
    let mut prev_event_ns: Option<Nanos> = None;
    let mut cpu_lane_ns: u128 = 0;
    let mut link_lane_ns: u128 = 0;
    let mut cpu_lanes = resources.cpu_lanes();
    let mut link_lanes = resources.link_lanes();

    while let Some((now, event)) = queue.pop() {
        // Integrate the lane capacity that was active since the last
        // event, before the autoscaler gets a chance to change it.
        if let Some(prev) = prev_event_ns {
            let dt = u128::from(now - prev);
            cpu_lane_ns += dt * cpu_lanes as u128;
            link_lane_ns += dt * link_lanes as u128;
        }
        prev_event_ns = Some(now);
        if let Some(plan) = failures {
            let epoch = plan.outages().transitions_until(now);
            if epoch != last_epoch {
                plane.set_health_epoch(epoch);
                last_epoch = epoch;
            }
        }
        let observed = match autoscaler.as_deref_mut() {
            Some(scaler) => {
                scaler.observe_into(now, resources, &mut view);
                true
            }
            None => false,
        };
        let nodes_now = resources.node_count();
        if nodes_now != known_nodes {
            // Scale-in drops node timelines: anything warmed on a
            // removed node must re-pay its cold start if the index is
            // later re-added (a re-added index is a brand-new machine).
            if nodes_now < known_nodes {
                for lane in &mut lanes {
                    lane.admission_state.shrink_to(nodes_now, now);
                }
            }
            cpu_lanes = resources.cpu_lanes();
            link_lanes = resources.link_lanes();
            known_nodes = nodes_now;
        }
        // Predictive pre-warming: with both a prewarm-configured
        // controller and pooled admission present, re-staff the pools
        // toward the square-root staffing target at every event (not
        // just on cooldown-gated decisions — evictions between
        // decisions would otherwise leave the pool empty).
        if let Some(scaler) = autoscaler.as_deref_mut() {
            if lanes.iter().any(|l| matches!(l.admission_state, AdmissionState::Pool(_))) {
                if let Some(target) =
                    scaler.prewarm_target(now, counters.in_flight, resources.node_count())
                {
                    for lane in &mut lanes {
                        if let AdmissionState::Pool(pool) = &mut lane.admission_state {
                            pool.ensure_target(now, target, counters.in_flight, resources);
                        }
                    }
                }
            }
        }
        match event {
            LoadEvent::Arrival { tenant, user } => {
                arrivals_total += 1;
                tenant_stats[tenant].arrivals += 1;
                if let Some(qcfg) = overload.queue {
                    if counters.in_flight >= qcfg.max_in_flight {
                        // No admission slot: queue the arrival, or shed
                        // per policy when the shared queue is full.
                        if queued_total >= qcfg.queue_cap {
                            let shed_tenant = match qcfg.policy {
                                // Tail drop (CoDel also tail-drops on
                                // overflow; its sojourn check runs at
                                // dequeue).
                                ShedPolicy::RejectNewest | ShedPolicy::CoDel { .. } => tenant,
                                // Shed the globally oldest queued entry
                                // (most likely already stale) and queue
                                // the newcomer in its place.
                                ShedPolicy::RejectOldest => {
                                    let oldest = lanes
                                        .iter()
                                        .enumerate()
                                        .filter_map(|(i, l)| {
                                            l.queued.front().map(|&(_, at)| (at, i))
                                        })
                                        .min()
                                        .map(|(_, i)| i);
                                    match oldest {
                                        Some(victim) => {
                                            lanes[victim].queued.pop_front();
                                            lanes[tenant].queued.push_back((user, now));
                                            victim
                                        }
                                        // Zero-capacity queue: nothing
                                        // to displace, drop the arrival.
                                        None => tenant,
                                    }
                                }
                            };
                            shed_total += 1;
                            tenant_stats[shed_tenant].shed += 1;
                        } else {
                            lanes[tenant].queued.push_back((user, now));
                            queued_total += 1;
                        }
                    } else {
                        start_instance(
                            &mut lanes[tenant],
                            &mut tenant_stats[tenant],
                            tenant,
                            user,
                            now,
                            now,
                            observed,
                            plane,
                            clock,
                            resources,
                            policy,
                            &mut view,
                            faults,
                            overload,
                            &mut overload_state,
                            &mut counters,
                            &mut outcomes,
                            &mut queue,
                        )?;
                    }
                } else {
                    start_instance(
                        &mut lanes[tenant],
                        &mut tenant_stats[tenant],
                        tenant,
                        user,
                        now,
                        now,
                        observed,
                        plane,
                        clock,
                        resources,
                        policy,
                        &mut view,
                        faults,
                        overload,
                        &mut overload_state,
                        &mut counters,
                        &mut outcomes,
                        &mut queue,
                    )?;
                }
            }
            LoadEvent::Completion { user, instance } => {
                counters.in_flight = counters.in_flight.saturating_sub(1);
                let tenant = outcomes[instance].tenant;
                // A completed instance hands its functions back to the
                // pool; a failed or deadline-blown one is torn down
                // where it died, so it returns nothing.
                if !outcomes[instance].failed && !outcomes[instance].deadline_exceeded {
                    lanes[tenant]
                        .admission_state
                        .complete(now, &outcomes[instance].assignment);
                }
                // Closed loop: the freed user thinks, then re-arrives —
                // the arrival is gated on this completion by
                // construction.
                if matches!(admission, Admission::Closed { .. }) && admitted < instance_bound {
                    admitted += 1;
                    queue.push(now + think_ns, LoadEvent::Arrival { tenant, user });
                }
                // Drain the bounded queue into the freed capacity in
                // smooth weighted-round-robin tenant order: each round,
                // every backed-up tenant earns its weight in credit, the
                // richest (ties → lowest index) dequeues and pays the
                // total active weight back.
                if let Some(qcfg) = overload.queue {
                    while counters.in_flight < qcfg.max_in_flight && queued_total > 0 {
                        let mut total_weight: i128 = 0;
                        let mut pick: Option<usize> = None;
                        for (i, lane) in lanes.iter().enumerate() {
                            if lane.queued.is_empty() {
                                continue;
                            }
                            wrr_credit[i] += i128::from(lane.weight);
                            total_weight += i128::from(lane.weight);
                            match pick {
                                Some(p) if wrr_credit[p] >= wrr_credit[i] => {}
                                _ => pick = Some(i),
                            }
                        }
                        let Some(pick) = pick else { break };
                        wrr_credit[pick] -= total_weight;
                        let (quser, qarrival) = lanes[pick]
                            .queued
                            .pop_front()
                            .expect("picked lanes have queued arrivals");
                        queued_total -= 1;
                        // CoDel-style staleness check at dequeue: an
                        // arrival that already overstayed the sojourn
                        // target is dead on arrival — shed it instead
                        // of burning capacity on it.
                        if let ShedPolicy::CoDel { target_ns } = qcfg.policy {
                            if now.saturating_sub(qarrival) > target_ns {
                                shed_total += 1;
                                tenant_stats[pick].shed += 1;
                                continue;
                            }
                        }
                        start_instance(
                            &mut lanes[pick],
                            &mut tenant_stats[pick],
                            pick,
                            quser,
                            qarrival,
                            now,
                            false,
                            plane,
                            clock,
                            resources,
                            policy,
                            &mut view,
                            faults,
                            overload,
                            &mut overload_state,
                            &mut counters,
                            &mut outcomes,
                            &mut queue,
                        )?;
                    }
                }
            }
            LoadEvent::NodeKill { node_id } => {
                // The control plane removes the dead node: un-started
                // backlog migrates to survivors, the mesh shrinks, and
                // everything warmed on the victim dies with it
                // (survivors above the victim shift down one index).
                // A one-node cluster keeps its dead node in the
                // schedule — there is nowhere to migrate to, and the
                // outage window already fails every placement.
                if let Some(victim) = resources.node_index_of(node_id) {
                    if resources.node_count() > 1 {
                        resources.remove_node(victim, now);
                        for lane in &mut lanes {
                            lane.admission_state.remove_node(victim, now);
                        }
                        cpu_lanes = resources.cpu_lanes();
                        link_lanes = resources.link_lanes();
                        known_nodes = resources.node_count();
                    }
                }
            }
        }
    }

    // Arrivals still queued when the event stream dried up never ran:
    // they count as shed, keeping `arrivals == outcomes + shed` exact.
    for (i, lane) in lanes.iter().enumerate() {
        let leftover = lane.queued.len();
        if leftover > 0 {
            shed_total += leftover;
            tenant_stats[i].shed += leftover;
        }
    }

    let first = outcomes.first().map(|o| o.release_ns).unwrap_or(0);
    let last = outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(first);
    let horizon_ns = last - first;
    // Keep-alive fates settle at the run horizon: still-warm instances
    // whose TTL would expire by then count as evictions, the rest stay
    // warm at end (so the idle-residency integral is complete). Lane
    // pools merge by summation into the run-level accounting.
    let mut pool: Option<PoolStats> = None;
    for lane in lanes {
        if let Some(stats) = lane.admission_state.finalize(last) {
            pool = Some(match pool {
                None => stats,
                Some(acc) => PoolStats {
                    hits: acc.hits + stats.hits,
                    misses: acc.misses + stats.misses,
                    restores: acc.restores + stats.restores,
                    returns: acc.returns + stats.returns,
                    evictions: acc.evictions + stats.evictions,
                    prewarms: acc.prewarms + stats.prewarms,
                    prewarm_ns: acc.prewarm_ns + stats.prewarm_ns,
                    idle_ns: acc.idle_ns + stats.idle_ns,
                    warm_at_end: acc.warm_at_end + stats.warm_at_end,
                },
            });
        }
    }
    let (cpu1, _) = resources.cpu_reserved();
    let (link1, _) = resources.link_reserved();
    let util = |used: Nanos, lane_ns: u128| {
        if lane_ns == 0 {
            0.0
        } else {
            used as f64 / lane_ns as f64
        }
    };
    // Offered load is a property of the admission process, so the engine
    // computes it (the drivers used to fill it in post hoc, which left a
    // 0.0 sentinel on any path that forgot). An empty run offers nothing
    // — 0.0, never NaN.
    let offered_rps = match &admission {
        Admission::Open { releases, mean_interval_ns } => {
            if releases.is_empty() {
                0.0
            } else {
                1e9 / (*mean_interval_ns).max(1) as f64
            }
        }
        Admission::Closed { .. } => 0.0, // filled from the measured rate below
        // Multi offers the merged trace's mean rate: n−1 gaps over the
        // release span. Degenerate traces (< 2 releases, or all at one
        // instant) offer 0.0 — never NaN.
        Admission::Multi { releases } => {
            if releases.len() < 2 {
                0.0
            } else {
                let first_at = releases.first().map(|r| r.0).unwrap_or(0);
                let last_at = releases.last().map(|r| r.0).unwrap_or(0);
                let span = last_at.saturating_sub(first_at);
                if span == 0 {
                    0.0
                } else {
                    (releases.len() - 1) as f64 * 1e9 / span as f64
                }
            }
        }
    };
    let mut run = LoadRun {
        outcomes,
        horizon_ns,
        failed: counters.failed,
        arrivals: arrivals_total,
        shed: shed_total,
        deadline_exceeded: counters.deadline_exceeded,
        tenants: tenant_stats,
        retries: counters.retries,
        offered_rps,
        pool,
        cpu_utilization: util(cpu1 - cpu0, cpu_lane_ns),
        link_utilization: util(link1 - link0, link_lane_ns),
        scale_events: autoscaler.map(|a| a.events().to_vec()).unwrap_or_default(),
        final_nodes: resources.node_count(),
        sorted_sojourns: std::sync::OnceLock::new(),
    };
    // A closed loop offers exactly what it completes: each user admits
    // its next instance only after the previous one finishes.
    if matches!(admission, Admission::Closed { .. }) {
        run.offered_rps = run.throughput_rps();
    }
    Ok(run)
}

/// Configuration of the backlog-driven [`Autoscaler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalerConfig {
    /// Never shrink below this many nodes.
    pub min_nodes: usize,
    /// Never grow beyond this many nodes.
    pub max_nodes: usize,
    /// Core count of every node the controller adds.
    pub node_cores: u32,
    /// Scale **up** when the windowed mean per-node backlog exceeds
    /// this.
    pub scale_up_backlog_ns: Nanos,
    /// Scale **down** when the windowed mean per-node backlog falls
    /// below this *and* the last node has fully drained.
    pub scale_down_backlog_ns: Nanos,
    /// Observation window; also the minimum gap between two decisions
    /// (the cooldown that keeps the controller from flapping on one
    /// bursty arrival).
    pub window_ns: Nanos,
}

/// Predictive pre-warming configuration (see
/// [`Autoscaler::with_prewarm`]).
///
/// The controller watches the engine's in-flight demand estimate,
/// extrapolates it `lead_ns` ahead along the observed slope, and staffs
/// the warm pool to `ceil(demand + headroom·√demand)` — Erlang-style
/// square-root staffing, the classic safety-capacity rule for keeping
/// wait probability flat as demand grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrewarmConfig {
    /// Square-root staffing headroom β in `ceil(d + β·√d)`.
    pub headroom: f64,
    /// How far ahead demand is extrapolated along the observed slope.
    pub lead_ns: Nanos,
    /// Demand-observation window; also the minimum gap between two
    /// staffing-target *increases* (the prewarm cooldown).
    pub window_ns: Nanos,
}

/// The elastic controller: watches the windowed mean-backlog signal from
/// live [`ResourceView`] snapshots and resizes the [`SchedResources`]
/// between instances.
///
/// The engine calls [`observe`](Self::observe) at every load event
/// (arrivals *and* completions). Each observation appends the view's
/// [`mean_backlog_ns`](ResourceView::mean_backlog_ns) to a sliding
/// window; once per `window_ns` the controller compares the window mean
/// against the two thresholds and adds ([`SchedResources::add_node`]) or
/// removes ([`SchedResources::remove_last_node`]) one node. Scale-in is
/// drain-safe: the last node is only removed once its own CPU backlog
/// *and* every one of its pair links have drained, so no in-flight
/// reservation is orphaned mid-instance.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    /// Sliding window of (time, mean-backlog) samples.
    window: Vec<(Nanos, Nanos)>,
    last_decision_ns: Nanos,
    events: Vec<ScaleEvent>,
    /// The node count this controller last decided the cluster should
    /// have (seeded from the first observation). A live count *below*
    /// it means capacity was lost outside the controller — a killed
    /// node — and triggers replacement.
    expected_nodes: Option<usize>,
    /// Predictive pre-warming; `None` leaves the controller scaling
    /// nodes only.
    prewarm: Option<PrewarmConfig>,
    /// Sliding (time, in-flight) demand samples for the prewarm slope.
    demand: Vec<(Nanos, usize)>,
    /// The ratcheted square-root staffing target (only grows within a
    /// run — bursty ramps re-cool between runs via [`reset`](Self::reset)).
    prewarm_level: usize,
    /// When the staffing target last rose (the prewarm cooldown anchor).
    last_prewarm_ns: Option<Nanos>,
}

impl Autoscaler {
    /// A fresh controller.
    ///
    /// # Panics
    ///
    /// Panics if `min_nodes` is zero or exceeds `max_nodes`, or if
    /// `window_ns` is zero.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        assert!(cfg.min_nodes > 0, "the cluster cannot shrink to zero nodes");
        assert!(cfg.min_nodes <= cfg.max_nodes, "min_nodes must not exceed max_nodes");
        assert!(cfg.window_ns > 0, "a zero observation window would decide on every event");
        Self {
            cfg,
            window: Vec::new(),
            last_decision_ns: 0,
            events: Vec::new(),
            expected_nodes: None,
            prewarm: None,
            demand: Vec::new(),
            prewarm_level: 0,
            last_prewarm_ns: None,
        }
    }

    /// Enables predictive pre-warming: square-root staffing on the
    /// engine's in-flight demand estimate, emitting
    /// [`ScaleAction::Prewarm`] events as the staffing target ratchets
    /// up. Only effective when the run also uses pooled admission
    /// ([`AdmissionConfig::pooled`]).
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero or `headroom` is negative.
    #[must_use]
    pub fn with_prewarm(mut self, prewarm: PrewarmConfig) -> Self {
        assert!(prewarm.window_ns > 0, "a zero prewarm window would ratchet on every event");
        assert!(prewarm.headroom >= 0.0, "negative staffing headroom is meaningless");
        self.prewarm = Some(prewarm);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// The decisions taken so far, in order.
    pub fn events(&self) -> &[ScaleEvent] {
        &self.events
    }

    /// Forgets window samples and the decision trace (between runs);
    /// keeps the configuration.
    pub fn reset(&mut self) {
        self.window.clear();
        self.last_decision_ns = 0;
        self.events.clear();
        self.expected_nodes = None;
        self.demand.clear();
        self.prewarm_level = 0;
        self.last_prewarm_ns = None;
    }

    /// One prewarm observation at `now`: records the in-flight demand
    /// sample, ratchets the square-root staffing target when the
    /// `lead_ns`-ahead extrapolation warrants it (at most once per
    /// cooldown window, traced as a [`ScaleAction::Prewarm`] event),
    /// and returns the current target for the engine to staff the pool
    /// to. `None` when pre-warming is unconfigured or the target is
    /// still zero.
    fn prewarm_target(&mut self, now: Nanos, in_flight: usize, nodes: usize) -> Option<usize> {
        let cfg = self.prewarm?;
        self.demand.push((now, in_flight));
        let cutoff = now.saturating_sub(cfg.window_ns);
        self.demand.retain(|&(t, _)| t >= cutoff);
        let (_, d0) = self.demand[0];
        // Normalise over the full window, not the observed sample span:
        // two samples landing nanoseconds apart would otherwise produce
        // an unbounded slope and ratchet the staffing level into the
        // hundreds from a single coincident-arrival tie.
        let slope = (in_flight as f64 - d0 as f64) / cfg.window_ns as f64;
        let predicted = (in_flight as f64 + slope.max(0.0) * cfg.lead_ns as f64).max(0.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let candidate = (predicted + cfg.headroom * predicted.sqrt()).ceil() as usize;
        let cooled =
            self.last_prewarm_ns.is_none_or(|t| now.saturating_sub(t) >= cfg.window_ns);
        if candidate > self.prewarm_level && cooled {
            self.prewarm_level = candidate;
            self.last_prewarm_ns = Some(now);
            self.events.push(ScaleEvent {
                at_ns: now,
                action: ScaleAction::Prewarm,
                nodes_after: nodes,
                signal_ns: candidate as Nanos,
            });
        }
        (self.prewarm_level > 0).then_some(self.prewarm_level)
    }

    /// One observation at virtual time `now`: record the live backlog
    /// signal and, at most once per window, act on it. Returns a view
    /// that is **current after any decision** (freshly re-snapshotted
    /// when the observation resized the cluster), so callers placing an
    /// instance at the same event need not snapshot twice.
    ///
    /// Allocates a fresh view; the load engine's per-event path uses
    /// [`observe_into`](Self::observe_into) with a reusable scratch view
    /// instead.
    pub fn observe(&mut self, now: Nanos, resources: &mut SchedResources) -> ResourceView {
        let mut view = ResourceView::default();
        self.observe_into(now, resources, &mut view);
        view
    }

    /// [`observe`](Self::observe), refreshing the caller's scratch `view`
    /// in place (allocation-free in steady state). On return `view` is
    /// current **after** any scaling decision this observation took.
    pub fn observe_into(
        &mut self,
        now: Nanos,
        resources: &mut SchedResources,
        view: &mut ResourceView,
    ) {
        resources.view_into(now, view);
        // Capacity-loss detection first: a live node count below what
        // this controller last decided (seeded from the first
        // observation) means something *outside* it — a kill — removed
        // capacity. Replacement bypasses the backlog cooldown: a dead
        // node is not a noisy signal to be smoothed, so `last_decision_ns`
        // stays put and a pending backlog decision is not delayed.
        let live = resources.node_count();
        let expected = (*self.expected_nodes.get_or_insert(live)).min(self.cfg.max_nodes);
        if live < expected {
            for replaced in live..expected {
                resources.add_node(self.cfg.node_cores);
                self.events.push(ScaleEvent {
                    at_ns: now,
                    action: ScaleAction::Replace,
                    nodes_after: replaced + 1,
                    signal_ns: 0,
                });
            }
            resources.view_into(now, view);
        }
        self.window.push((now, view.mean_backlog_ns()));
        let cutoff = now.saturating_sub(self.cfg.window_ns);
        self.window.retain(|&(t, _)| t >= cutoff);
        if now.saturating_sub(self.last_decision_ns) < self.cfg.window_ns {
            return;
        }
        let signal = self.window.iter().map(|&(_, b)| b).sum::<Nanos>()
            / self.window.len().max(1) as u64;
        let nodes = resources.node_count();
        if signal > self.cfg.scale_up_backlog_ns && nodes < self.cfg.max_nodes {
            resources.add_node(self.cfg.node_cores);
            self.events.push(ScaleEvent {
                at_ns: now,
                action: ScaleAction::Up,
                nodes_after: nodes + 1,
                signal_ns: signal,
            });
            self.expected_nodes = Some(nodes + 1);
            self.last_decision_ns = now;
        } else if signal < self.cfg.scale_down_backlog_ns
            && nodes > self.cfg.min_nodes
            && view.node(nodes - 1).backlog_ns == 0
            // The departing node's pair links must have drained too —
            // an in-flight transfer still occupies its wire even after
            // the node's own CPU went idle.
            && (0..nodes - 1).all(|o| view.link_backlog_between(o, nodes - 1) == 0)
        {
            resources.remove_last_node();
            self.events.push(ScaleEvent {
                at_ns: now,
                action: ScaleAction::Down,
                nodes_after: nodes - 1,
                signal_ns: signal,
            });
            self.expected_nodes = Some(nodes - 1);
            self.last_decision_ns = now;
        } else {
            return;
        }
        resources.view_into(now, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{LocalityFirst, Pinned, SpreadLoad};
    use crate::workflow::execute_concurrent;

    /// A plane charging fixed phase costs, payload-independent, so
    /// schedules are easy to reason about.
    struct FixedPlane {
        clock: VirtualClock,
        prepare_ns: Nanos,
        transfer_ns: Nanos,
        consume_ns: Nanos,
    }

    impl FixedPlane {
        fn new(clock: VirtualClock) -> Self {
            Self { clock, prepare_ns: 200, transfer_ns: 1_000, consume_ns: 300 }
        }
    }

    impl DataPlane for FixedPlane {
        fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
            self.clock.advance(self.prepare_ns + self.transfer_ns + self.consume_ns);
            Ok(p)
        }

        fn transfer_detailed(
            &mut self,
            from: &str,
            to: &str,
            p: Bytes,
        ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
            let timing = TransferTiming {
                prepare_ns: self.prepare_ns,
                transfer_ns: self.transfer_ns,
                consume_ns: self.consume_ns,
            };
            let received = self.transfer(from, to, p)?;
            Ok((received, Some(timing)))
        }
    }

    fn pipeline_spec() -> WorkflowSpec {
        WorkflowSpec::sequence("pipe", "t", ["a".to_owned(), "b".to_owned()])
    }

    fn open(spec: WorkflowSpec, interval_ns: Nanos, instances: usize) -> OpenLoop {
        OpenLoop {
            spec,
            payload: Bytes::new(),
            arrivals: ArrivalProcess::Uniform { interval_ns },
            instances,
            admission: AdmissionConfig::warm(),
        }
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let times = ArrivalProcess::Uniform { interval_ns: 250 }.times(4);
        assert_eq!(times, vec![0, 250, 500, 750]);
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_near_their_mean() {
        let process = ArrivalProcess::Poisson { mean_interval_ns: 1_000_000, seed: 7 };
        let a = process.times(400);
        let b = process.times(400);
        assert_eq!(a, b, "same seed must replay identically");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = a[399] as f64 / 399.0;
        assert!(
            (500_000.0..2_000_000.0).contains(&mean_gap),
            "empirical mean gap {mean_gap} too far from 1e6"
        );
        let other = ArrivalProcess::Poisson { mean_interval_ns: 1_000_000, seed: 8 }.times(400);
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn placed_overrides_placement_and_forwards_transfers() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let mut placed = Placed::new(&mut plane, &spec, &[2, 5]);
        assert_eq!(placed.placement("a"), Some(2));
        assert_eq!(placed.placement("b"), Some(5));
        assert_eq!(placed.placement("ghost"), None);
        let out = placed.transfer("a", "b", Bytes::from_static(b"xyz")).unwrap();
        assert_eq!(&out[..], b"xyz");
    }

    #[test]
    fn contention_never_speeds_an_instance_up() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();

        // Uncontended makespan of one instance under locality placement.
        let mut fresh = SchedResources::heterogeneous(&[1, 1]);
        let mut placed = Placed::new(&mut plane, &spec, &[0, 0]);
        let solo = execute_concurrent(&mut placed, &clock, &spec, Bytes::new(), &mut fresh)
            .unwrap()
            .total_latency_ns;
        assert_eq!(solo, 1_500);

        // Heavy load: arrivals far faster than the 1-core nodes drain.
        let load = open(spec.clone(), 100, 12);
        let mut shared = SchedResources::heterogeneous(&[1, 1]);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut shared, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 12);
        for outcome in &run.outcomes {
            assert!(
                outcome.sojourn_ns >= solo,
                "instance {} finished in {} < uncontended {}",
                outcome.instance,
                outcome.sojourn_ns,
                solo
            );
        }
        // Queueing builds: the last instance waits longer than the first.
        assert!(run.outcomes[11].sojourn_ns > run.outcomes[0].sojourn_ns);
        // Overload: achieved throughput falls short of offered.
        assert!(run.throughput_rps() < run.offered_rps);
    }

    #[test]
    fn light_load_leaves_instances_at_their_solo_makespan() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let load = open(spec.clone(), 1_000_000, 5);
        let mut shared = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut shared, &mut policy).unwrap();
        // Arrivals 1 ms apart, service 1.5 µs: nothing ever queues.
        assert!(run.outcomes.iter().all(|o| o.sojourn_ns == 1_500));
        let p = run.sojourn_percentiles().unwrap();
        assert_eq!((p.p50_ns, p.p95_ns, p.p99_ns), (1_500, 1_500, 1_500));
        assert_eq!(run.max_sojourn_ns(), Some(1_500));
    }

    #[test]
    fn spread_policy_pays_the_link_locality_avoids() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let load = open(spec.clone(), 10_000, 4);

        let mut res = SchedResources::new(2, 4);
        let mut locality = LocalityFirst::new();
        let packed = load.run(&mut plane, &clock, &mut res, &mut locality).unwrap();
        assert!((packed.link_utilization - 0.0).abs() < f64::EPSILON);
        assert!(packed.cpu_utilization > 0.0);

        let mut res = SchedResources::new(2, 4);
        let mut spread = SpreadLoad::new();
        let crossed = load.run(&mut plane, &clock, &mut res, &mut spread).unwrap();
        assert!(crossed.link_utilization > 0.0);
        // Every instance's a→b crosses nodes under spread.
        assert!(crossed.outcomes.iter().all(|o| o.assignment[0] != o.assignment[1]));
    }

    #[test]
    fn transfer_errors_propagate_out_of_the_loop() {
        struct Failing;
        impl DataPlane for Failing {
            fn transfer(&mut self, _: &str, _: &str, _: Bytes) -> Result<Bytes, PlatformError> {
                Err(PlatformError::Transfer("down".into()))
            }
        }
        let clock = VirtualClock::new();
        let load = open(pipeline_spec(), 1, 2);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        assert!(matches!(
            load.run(&mut Failing, &clock, &mut res, &mut policy),
            Err(PlatformError::Transfer(_))
        ));
    }

    #[test]
    fn empty_run_reports_zeroes_not_nan() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = open(pipeline_spec(), 1_000, 0);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert!(run.outcomes.is_empty());
        assert_eq!(run.horizon_ns, 0);
        assert_eq!(run.throughput_rps(), 0.0);
        assert_eq!(run.offered_rps, 0.0, "an empty run offers nothing");
        assert_eq!(run.max_sojourn_ns(), None);
        assert!(run.sojourn_percentiles().is_none());
        assert_eq!(run.cpu_utilization, 0.0);
        assert_eq!(run.link_utilization, 0.0);
    }

    #[test]
    fn single_instance_run_is_consistent() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = open(pipeline_spec(), 1_000, 1);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 1);
        assert_eq!(run.horizon_ns, 1_500);
        assert!(run.throughput_rps().is_finite());
        assert!(run.throughput_rps() > 0.0);
        assert_eq!(run.max_sojourn_ns(), Some(1_500));
        let p = run.sojourn_percentiles().unwrap();
        assert_eq!((p.count, p.p50_ns, p.p99_ns), (1, 1_500, 1_500));
    }

    #[test]
    fn closed_loop_gates_arrivals_on_completions() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 2,
            think_ns: 400,
            ramp_ns: 0,
            instances: 8,
            admission: AdmissionConfig::warm(),
        };
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 8);
        // Per user: arrival k is exactly completion k-1 plus think time.
        for user in 0..2 {
            let mine: Vec<&InstanceOutcome> =
                run.outcomes.iter().filter(|o| o.user == user).collect();
            assert_eq!(mine.len(), 4);
            for pair in mine.windows(2) {
                assert_eq!(pair[1].release_ns, pair[0].finish_ns + 400);
            }
        }
        // Closed loop: offered equals achieved by definition.
        assert_eq!(run.offered_rps, run.throughput_rps());
    }

    #[test]
    fn closed_loop_concurrency_never_exceeds_users() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 3,
            think_ns: 0,
            ramp_ns: 0,
            instances: 12,
            admission: AdmissionConfig::warm(),
        };
        let mut res = SchedResources::new(1, 1);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 12);
        // At any instance's release, at most `users` instances overlap.
        for o in &run.outcomes {
            let in_flight = run
                .outcomes
                .iter()
                .filter(|p| p.release_ns <= o.release_ns && p.finish_ns > o.release_ns)
                .count();
            assert!(in_flight <= 3, "{in_flight} instances in flight at {}", o.release_ns);
        }
    }

    #[test]
    fn closed_loop_with_fewer_instances_than_users() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 8,
            think_ns: 100,
            ramp_ns: 0,
            instances: 3,
            admission: AdmissionConfig::warm(),
        };
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 3);
    }

    #[test]
    fn cold_start_charged_once_per_function_and_node() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let mut load = open(spec, 1_000_000, 3);
        load.admission = AdmissionConfig::cold(50_000);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        // First instance pays both functions' cold starts; later
        // instances land warm (locality keeps them on the same node —
        // arrivals are 1 ms apart so the node has drained each time).
        assert_eq!(run.outcomes[0].cold_start_ns, 50_000);
        assert_eq!(run.outcomes[0].sojourn_ns, 50_000 + 1_500);
        assert_eq!(run.outcomes[1].cold_start_ns, 0);
        assert_eq!(run.outcomes[1].sojourn_ns, 1_500);
        assert_eq!(run.cold_starts(), 1);
        assert_eq!(run.cold_start_total_ns(), 50_000);
    }

    #[test]
    fn cold_start_repaid_on_every_new_node() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let load = ClosedLoop {
            spec,
            payload: Bytes::new(),
            users: 1,
            think_ns: 0,
            ramp_ns: 0,
            instances: 4,
            admission: AdmissionConfig::cold(10_000),
        };
        let mut res = SchedResources::new(4, 4);
        let mut policy = crate::scheduler::RoundRobin::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        // Round-robin moves every instance to a fresh node: each pays.
        assert_eq!(run.cold_starts(), 4);
        assert!(run.outcomes.iter().all(|o| o.cold_start_ns == 10_000));
    }

    #[test]
    fn autoscaler_grows_under_pressure_and_shrinks_when_idle() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        // 40 instances arriving every 500 ns onto a single 1-core node
        // (service 1500 ns): heavy overload.
        let load = open(spec, 500, 40);
        let mut res = SchedResources::heterogeneous(&[1]);
        let mut policy = LocalityFirst::new();
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 4,
            node_cores: 1,
            scale_up_backlog_ns: 3_000,
            scale_down_backlog_ns: 500,
            window_ns: 2_000,
        });
        let run = load
            .run_elastic(&mut plane, &clock, &mut res, &mut policy, Some(&mut scaler))
            .unwrap();
        assert!(
            run.scale_events.iter().any(|e| e.action == ScaleAction::Up),
            "overload must trigger scale-up: {:?}",
            run.scale_events
        );
        assert!(run.final_nodes > 1);
        // And the elastic run beats the fixed-capacity run's tail.
        let clock2 = VirtualClock::new();
        let mut plane2 = FixedPlane::new(clock2.clone());
        let load2 = open(pipeline_spec(), 500, 40);
        let mut fixed = SchedResources::heterogeneous(&[1]);
        let mut policy2 = LocalityFirst::new();
        let fixed_run = load2.run(&mut plane2, &clock2, &mut fixed, &mut policy2).unwrap();
        let p_el = run.sojourn_percentiles().unwrap();
        let p_fx = fixed_run.sojourn_percentiles().unwrap();
        assert!(
            p_el.p95_ns < p_fx.p95_ns,
            "elastic p95 {} must beat fixed p95 {}",
            p_el.p95_ns,
            p_fx.p95_ns
        );
    }

    #[test]
    fn autoscaler_scales_down_after_the_surge_drains() {
        let mut res = SchedResources::heterogeneous(&[1, 1, 1]);
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 3,
            node_cores: 1,
            scale_up_backlog_ns: 1_000_000,
            scale_down_backlog_ns: 100,
            window_ns: 1_000,
        });
        // Idle cluster observed well past the window: scale down fires.
        scaler.observe(5_000, &mut res);
        assert_eq!(res.node_count(), 2);
        assert_eq!(scaler.events().len(), 1);
        assert_eq!(scaler.events()[0].action, ScaleAction::Down);
        // Cooldown: an immediate second observation does nothing…
        scaler.observe(5_100, &mut res);
        assert_eq!(res.node_count(), 2);
        // …but after another full window the next shrink fires, and the
        // floor holds.
        scaler.observe(6_500, &mut res);
        assert_eq!(res.node_count(), 1);
        scaler.observe(9_000, &mut res);
        assert_eq!(res.node_count(), 1, "min_nodes is a floor");
        scaler.reset();
        assert!(scaler.events().is_empty());
    }

    #[test]
    fn cold_start_repaid_when_a_scaled_in_node_returns() {
        // Two users burst at t=0 onto two 1-core nodes (both pay cold
        // starts), the cluster drains and the controller scales in to
        // one node, then the next burst scales back out — the re-added
        // node is a brand-new machine and must charge its cold starts
        // again, not inherit the removed node's warm set.
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 2,
            think_ns: 6_000,
            ramp_ns: 0,
            instances: 4,
            admission: AdmissionConfig::cold(1_000),
        };
        let mut res = SchedResources::heterogeneous(&[1, 1]);
        let mut policy = LocalityFirst::new();
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 2,
            node_cores: 1,
            scale_up_backlog_ns: 600,
            scale_down_backlog_ns: 500,
            window_ns: 1_000,
        });
        let run = load
            .run_elastic(&mut plane, &clock, &mut res, &mut policy, Some(&mut scaler))
            .unwrap();
        // Drain → scale-in, burst → scale-out (a final drain-time
        // scale-in may trail at the last completion).
        let actions: Vec<ScaleAction> = run.scale_events.iter().map(|e| e.action).collect();
        assert!(
            actions.starts_with(&[ScaleAction::Down, ScaleAction::Up]),
            "expected drain → scale-in → burst → scale-out: {:?}",
            run.scale_events
        );
        // Burst 1: both instances cold (one per node).
        assert_eq!(run.outcomes[0].cold_start_ns, 2_000);
        assert_eq!(run.outcomes[1].cold_start_ns, 2_000);
        // Burst 2: the packed node is warm, the re-added node is not.
        assert_eq!(run.outcomes[2].cold_start_ns, 0);
        assert_eq!(
            run.outcomes[3].cold_start_ns, 2_000,
            "a re-added node is a fresh machine and must re-pay cold starts"
        );
    }

    #[test]
    fn autoscaler_does_not_remove_a_node_with_busy_links() {
        let mut res = SchedResources::mesh(&[1, 1, 1]);
        // Node 2's CPU is idle but its wire to node 0 still drains.
        res.link_between(0, 2).reserve(0, 2_000);
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 3,
            node_cores: 1,
            scale_up_backlog_ns: 1_000_000,
            scale_down_backlog_ns: 1_000_000,
            window_ns: 500,
        });
        scaler.observe(1_000, &mut res);
        assert_eq!(res.node_count(), 3, "a node with an in-flight transfer must stay");
        // Once the wire drains, scale-in proceeds.
        scaler.observe(3_000, &mut res);
        assert_eq!(res.node_count(), 2);
    }

    #[test]
    fn autoscaler_does_not_remove_a_backlogged_node() {
        let mut res = SchedResources::heterogeneous(&[1, 1]);
        // Last node still draining: mean backlog is low, node backlog not.
        res.cpu(1).reserve(0, 2_000);
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 2,
            node_cores: 1,
            scale_up_backlog_ns: 1_000_000,
            scale_down_backlog_ns: 1_500,
            window_ns: 500,
        });
        scaler.observe(1_000, &mut res);
        assert_eq!(res.node_count(), 2, "a draining node must not be removed");
        // Once drained, it goes.
        scaler.observe(3_000, &mut res);
        assert_eq!(res.node_count(), 1);
    }

    #[test]
    fn open_loop_outcomes_match_user_indices() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = open(pipeline_spec(), 2_000, 4);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        for (i, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.instance, i);
            assert_eq!(o.user, i);
            assert_eq!(o.cold_start_ns, 0);
        }
        assert!(run.scale_events.is_empty());
        assert_eq!(run.final_nodes, 2);
    }

    #[test]
    fn an_empty_failure_plan_is_byte_identical_to_a_failure_free_run() {
        let baseline = {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane::new(clock.clone());
            let mut res = SchedResources::new(2, 4);
            let mut policy = SpreadLoad::new();
            open(pipeline_spec(), 700, 9).run(&mut plane, &clock, &mut res, &mut policy).unwrap()
        };
        let faulty = {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane::new(clock.clone());
            let mut res = SchedResources::new(2, 4);
            let mut policy = SpreadLoad::new();
            let plan = FailurePlan::new(RetryPolicy::default());
            assert!(plan.is_empty());
            open(pipeline_spec(), 700, 9)
                .run_with_failures(&mut plane, &clock, &mut res, &mut policy, None, Some(&plan))
                .unwrap()
        };
        assert_eq!(baseline.outcomes.len(), faulty.outcomes.len());
        for (a, b) in baseline.outcomes.iter().zip(&faulty.outcomes) {
            assert_eq!(
                (a.release_ns, a.finish_ns, a.sojourn_ns, &a.assignment),
                (b.release_ns, b.finish_ns, b.sojourn_ns, &b.assignment),
            );
            assert!(!b.failed);
            assert_eq!(b.retries, 0);
        }
        assert_eq!(baseline.offered_rps, faulty.offered_rps);
        assert_eq!(baseline.cpu_utilization, faulty.cpu_utilization);
        assert_eq!(baseline.link_utilization, faulty.link_utilization);
        assert_eq!((faulty.failed, faulty.retries), (0, 0));
    }

    #[test]
    fn link_flap_edges_retry_until_the_window_lifts() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        // Pin a→b across the 0–1 link, then flap that link over the
        // first arrivals: they must retry (not fail, not error) and the
        // run must account every extra attempt.
        let mut policy = Pinned::new(0).pin("b", 1);
        let plan = FailurePlan::new(RetryPolicy::new(6, 2_000, 1 << 40)).with_outages(
            OutageSchedule::new().link_down(res.node_id(0), res.node_id(1), 0, 5_000),
        );
        let run = open(pipeline_spec(), 10_000, 4)
            .run_with_failures(&mut plane, &clock, &mut res, &mut policy, None, Some(&plan))
            .unwrap();
        assert_eq!(run.outcomes.len(), 4);
        assert_eq!(run.failed, 0, "the flap lifts well inside the retry budget");
        assert_eq!(run.completed(), 4);
        assert!(run.retries > 0, "the covered arrivals must have retried");
        assert!(run.retried() >= 1);
        // Instance 0 arrives at t=0 under the flap: its sojourn absorbs
        // the down window. Instance 3 arrives at t=30000, after the
        // window: clean first attempt.
        assert!(run.outcomes[0].retries > 0);
        assert!(run.outcomes[0].sojourn_ns >= 5_000);
        assert_eq!(run.outcomes[3].retries, 0);
        assert_eq!(run.outcomes[3].sojourn_ns, 1_500);
    }

    #[test]
    fn a_killed_node_fails_placed_instances_and_conserves_outcomes() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        let mut policy = Pinned::new(0).pin("b", 1);
        // Node 1 dies before the run and is never detected (no removal):
        // every pinned a→b edge dead-ends there and exhausts its budget.
        let plan = FailurePlan::new(RetryPolicy::new(3, 1_000, 1 << 40))
            .with_outages(OutageSchedule::new().node_killed(res.node_id(1), 0));
        let run = open(pipeline_spec(), 10_000, 3)
            .run_with_failures(&mut plane, &clock, &mut res, &mut policy, None, Some(&plan))
            .unwrap();
        assert_eq!(run.outcomes.len(), 3, "failed instances still yield outcomes");
        assert_eq!(run.failed, 3);
        assert_eq!(run.completed(), 0);
        assert_eq!(run.outcomes.len(), run.completed() + run.failed);
        // 3 attempts per instance: 2 retries each.
        assert_eq!(run.retries, 6);
        assert!(run.outcomes.iter().all(|o| o.failed && o.retries == 2));
        assert!(run.sojourn_percentiles().is_none(), "percentiles cover completions only");
        assert!(run.throughput_rps() == 0.0);
    }

    #[test]
    fn a_detected_kill_removes_the_node_and_the_autoscaler_replaces_it() {
        let spec = pipeline_spec();
        let closed = ClosedLoop {
            spec: spec.clone(),
            payload: Bytes::new(),
            users: 3,
            think_ns: 200,
            ramp_ns: 0,
            instances: 30,
            admission: AdmissionConfig::warm(),
        };
        // Thresholds no backlog signal can cross: the only decisions
        // this controller ever takes are replacements.
        let cfg = AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 4,
            node_cores: 4,
            scale_up_backlog_ns: Nanos::MAX,
            scale_down_backlog_ns: 0,
            window_ns: 1,
        };

        // Fixed-size baseline: the kill permanently halves capacity.
        let fixed = {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane::new(clock.clone());
            let mut res = SchedResources::new(2, 4);
            let mut policy = SpreadLoad::new();
            let plan = FailurePlan::new(RetryPolicy::new(2, 500, 1 << 40)).kill_node(
                res.node_id(1),
                4_000,
                1_000,
            );
            closed
                .run_with_failures(&mut plane, &clock, &mut res, &mut policy, None, Some(&plan))
                .unwrap()
        };
        assert_eq!(fixed.final_nodes, 1, "nobody replaces the dead node");
        assert_eq!(fixed.outcomes.len(), fixed.completed() + fixed.failed);

        // Elastic: the controller notices the loss and restores capacity.
        let elastic = {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane::new(clock.clone());
            let mut res = SchedResources::new(2, 4);
            let mut policy = SpreadLoad::new();
            let mut scaler = Autoscaler::new(cfg);
            let plan = FailurePlan::new(RetryPolicy::new(2, 500, 1 << 40)).kill_node(
                res.node_id(1),
                4_000,
                1_000,
            );
            closed
                .run_with_failures(
                    &mut plane,
                    &clock,
                    &mut res,
                    &mut policy,
                    Some(&mut scaler),
                    Some(&plan),
                )
                .unwrap()
        };
        assert_eq!(elastic.final_nodes, 2, "capacity restored to the expected size");
        assert_eq!(
            elastic.scale_events.iter().filter(|e| e.action == ScaleAction::Replace).count(),
            1,
            "exactly one replacement, no flapping: {:?}",
            elastic.scale_events,
        );
        assert_eq!(elastic.outcomes.len(), elastic.completed() + elastic.failed);
        // Once replaced, the tail of the run completes cleanly again.
        let last = elastic.outcomes.last().unwrap();
        assert!(!last.failed);
        // The replacement node is a fresh machine with a fresh id: the
        // dead node's windows must not apply to it.
        assert!(elastic.outcomes.iter().rev().take(5).all(|o| !o.failed));
    }

    #[test]
    fn failed_instances_re_arm_their_closed_loop_user() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        let mut policy = Pinned::new(0).pin("b", 1);
        // Node 1 is dead for the whole run and never removed: every
        // instance fails, yet all 6 get admitted — each failure re-arms
        // its user after think time.
        let plan = FailurePlan::new(RetryPolicy::new(2, 100, 1 << 40))
            .with_outages(OutageSchedule::new().node_killed(res.node_id(1), 0));
        let closed = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 2,
            think_ns: 300,
            ramp_ns: 0,
            instances: 6,
            admission: AdmissionConfig::warm(),
        };
        let run = closed
            .run_with_failures(&mut plane, &clock, &mut res, &mut policy, None, Some(&plan))
            .unwrap();
        assert_eq!(run.outcomes.len(), 6);
        assert_eq!(run.failed, 6);
        assert_eq!(run.completed(), 0);
        assert_eq!(run.offered_rps, 0.0, "a closed loop that completes nothing offers nothing");
        assert!(!run.offered_rps.is_nan());
    }

    #[test]
    fn open_loop_offered_rate_comes_from_the_arrival_process() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        // 1 ms mean interval → 1000 rps offered, computed by the engine
        // (no driver fills it in after the fact).
        let run = open(pipeline_spec(), 1_000_000, 3)
            .run(&mut plane, &clock, &mut res, &mut policy)
            .unwrap();
        assert!((run.offered_rps - 1_000.0).abs() < 1e-9);
    }

    use crate::overload::{OverloadConfig, QueueConfig, ShedPolicy};

    fn queue_only(max_in_flight: usize, queue_cap: usize, policy: ShedPolicy) -> OverloadConfig {
        OverloadConfig {
            queue: Some(QueueConfig { max_in_flight, queue_cap, policy }),
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn an_all_shed_run_reports_zeroes_and_none_never_nan() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        // Zero slots, zero queue: every arrival is shed at admission.
        let cfg = queue_only(0, 0, ShedPolicy::RejectNewest);
        let run = open(pipeline_spec(), 1_000, 5)
            .run_overloaded(&mut plane, &clock, &mut res, &mut policy, None, None, &cfg)
            .unwrap();
        assert_eq!(run.arrivals, 5);
        assert_eq!(run.shed, 5);
        assert!(run.outcomes.is_empty());
        assert_eq!((run.completed(), run.failed, run.deadline_exceeded), (0, 0, 0));
        assert!(run.sojourn_percentiles().is_none());
        assert!(run.throughput_rps() == 0.0 && !run.throughput_rps().is_nan());
        assert!(!run.offered_rps.is_nan());
        assert!(!run.cpu_utilization.is_nan() && !run.link_utilization.is_nan());
        let t = &run.tenants[0];
        assert_eq!((t.arrivals, t.shed, t.completed), (5, 5, 0));
        assert!(t.sojourn_percentiles().is_none());
    }

    #[test]
    fn the_default_overload_config_is_byte_identical_to_run_with_failures() {
        let run_pair = || {
            let clock = VirtualClock::new();
            let plane = FixedPlane::new(clock.clone());
            let res = SchedResources::new(2, 4);
            let policy = SpreadLoad::new();
            let plan = FailurePlan::new(RetryPolicy::new(4, 2_000, 1 << 40)).with_outages(
                OutageSchedule::new().link_down(res.node_id(0), res.node_id(1), 0, 4_000),
            );
            (clock, plane, res, policy, plan)
        };
        let baseline = {
            let (clock, mut plane, mut res, mut policy, plan) = run_pair();
            open(pipeline_spec(), 700, 9)
                .run_with_failures(&mut plane, &clock, &mut res, &mut policy, None, Some(&plan))
                .unwrap()
        };
        let overloaded = {
            let (clock, mut plane, mut res, mut policy, plan) = run_pair();
            let cfg = OverloadConfig::default();
            assert!(cfg.is_off());
            open(pipeline_spec(), 700, 9)
                .run_overloaded(&mut plane, &clock, &mut res, &mut policy, None, Some(&plan), &cfg)
                .unwrap()
        };
        assert_eq!(baseline.outcomes.len(), overloaded.outcomes.len());
        for (a, b) in baseline.outcomes.iter().zip(&overloaded.outcomes) {
            assert_eq!(
                (a.release_ns, a.cold_start_ns, a.finish_ns, a.sojourn_ns, a.retries, a.failed),
                (b.release_ns, b.cold_start_ns, b.finish_ns, b.sojourn_ns, b.retries, b.failed),
            );
            assert_eq!(a.assignment, b.assignment);
            assert!(!b.deadline_exceeded);
        }
        assert_eq!(baseline.offered_rps, overloaded.offered_rps);
        assert_eq!(baseline.cpu_utilization, overloaded.cpu_utilization);
        assert_eq!(baseline.link_utilization, overloaded.link_utilization);
        assert_eq!((overloaded.shed, overloaded.deadline_exceeded), (0, 0));
    }

    #[test]
    fn multi_tenant_runs_interleave_and_account_per_tenant() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        let mut policy = SpreadLoad::new();
        let spec_a = WorkflowSpec::sequence("pipe-a", "alice", ["a".to_owned(), "b".to_owned()]);
        let spec_b = WorkflowSpec::sequence("pipe-b", "bob", ["a".to_owned(), "b".to_owned()]);
        let load = MultiLoad {
            tenants: vec![
                TenantLoad::from_process(
                    "alice",
                    spec_a,
                    Bytes::new(),
                    &ArrivalProcess::Uniform { interval_ns: 2_000 },
                    5,
                ),
                TenantLoad::from_process(
                    "bob",
                    spec_b,
                    Bytes::new(),
                    &ArrivalProcess::Uniform { interval_ns: 3_000 },
                    4,
                ),
            ],
            admission: AdmissionConfig::warm(),
        };
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 9);
        assert_eq!(run.arrivals, 9);
        assert_eq!(run.tenants.len(), 2);
        assert_eq!(run.tenants[0].name, "alice");
        assert_eq!(run.tenants[1].name, "bob");
        for (idx, t) in run.tenants.iter().enumerate() {
            assert_eq!(t.arrivals, [5, 4][idx]);
            assert_eq!(t.arrivals, t.completed + t.failed + t.deadline_exceeded + t.shed);
            assert_eq!(t.completed, run.outcomes.iter().filter(|o| o.tenant == idx && !o.failed).count());
        }
        // Same-instant ties keep tenant order: both release at t = 0 and
        // t = 6000, with alice (lane 0) admitted first each time.
        let tenant_order: Vec<usize> = run.outcomes.iter().map(|o| o.tenant).collect();
        assert_eq!(tenant_order, vec![0, 1, 0, 1, 0, 0, 1, 0, 1]);
        assert_eq!(run.completed(), run.tenants.iter().map(|t| t.completed).sum::<usize>());
    }

    #[test]
    fn blown_deadlines_are_accounted_apart_from_failures() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        // A three-stage pipeline: the b→c edge becomes ready 1500 ns
        // after the roots, past the 100 ns deadline — every instance
        // blows its deadline at that edge, none "fails".
        let spec =
            WorkflowSpec::sequence("pipe3", "t", ["a".to_owned(), "b".to_owned(), "c".to_owned()]);
        let cfg = OverloadConfig { deadline_ns: Some(100), ..OverloadConfig::default() };
        let load = OpenLoop {
            spec,
            payload: Bytes::new(),
            arrivals: ArrivalProcess::Uniform { interval_ns: 5_000 },
            instances: 3,
            admission: AdmissionConfig::warm(),
        };
        let run = load
            .run_overloaded(&mut plane, &clock, &mut res, &mut policy, None, None, &cfg)
            .unwrap();
        assert_eq!(run.outcomes.len(), 3);
        assert_eq!(run.deadline_exceeded, 3);
        assert_eq!((run.failed, run.completed(), run.shed), (0, 0, 0));
        assert!(run.outcomes.iter().all(|o| o.deadline_exceeded && !o.failed));
        assert!(run.sojourn_percentiles().is_none(), "blown instances never enter the digest");
        assert_eq!(run.tenants[0].deadline_exceeded, 3);
        assert_eq!(run.arrivals, run.completed() + run.failed + run.deadline_exceeded + run.shed);
    }

    #[test]
    fn the_weighted_queue_drains_tenants_by_their_weights() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let spec_a = WorkflowSpec::sequence("pipe-a", "alice", ["a".to_owned(), "b".to_owned()]);
        let spec_b = WorkflowSpec::sequence("pipe-b", "bob", ["a".to_owned(), "b".to_owned()]);
        let heavy = TenantLoad {
            name: "alice".to_owned(),
            spec: spec_a,
            payload: Bytes::new(),
            releases: vec![0; 10],
            weight: 4,
        };
        let light = TenantLoad {
            name: "bob".to_owned(),
            spec: spec_b,
            payload: Bytes::new(),
            releases: vec![0; 10],
            weight: 1,
        };
        let load = MultiLoad { tenants: vec![heavy, light], admission: AdmissionConfig::warm() };
        // One slot, everything else queues: the drain order is pure
        // smooth-WRR — a 4:1 cycle of [alice ×2, bob, alice ×2].
        let cfg = queue_only(1, 64, ShedPolicy::RejectNewest);
        let run = load
            .run_overloaded(&mut plane, &clock, &mut res, &mut policy, None, None, &cfg)
            .unwrap();
        assert_eq!(run.outcomes.len(), 20);
        assert_eq!(run.shed, 0);
        let order: Vec<usize> = run.outcomes.iter().map(|o| o.tenant).collect();
        // outcomes[0] is the t = 0 immediate admit (alice, lane order);
        // each subsequent start is one WRR dequeue.
        assert_eq!(order[0], 0);
        assert_eq!(&order[1..6], &[0, 0, 1, 0, 0], "one smooth-WRR cycle at weights 4:1");
        assert_eq!(&order[6..11], &[0, 0, 1, 0, 0]);
        // Once alice's lane empties, bob drains the remainder.
        assert_eq!(order.iter().filter(|&&t| t == 1).count(), 10);
    }

    #[test]
    fn reject_newest_and_reject_oldest_shed_opposite_ends_of_the_queue() {
        let run_with = |policy_kind: ShedPolicy| {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane::new(clock.clone());
            let mut res = SchedResources::new(2, 4);
            let mut policy = LocalityFirst::new();
            let cfg = queue_only(1, 4, policy_kind);
            open(pipeline_spec(), 1, 10)
                .run_overloaded(&mut plane, &clock, &mut res, &mut policy, None, None, &cfg)
                .unwrap()
        };
        // All ten arrivals land before the first completion (1500 ns):
        // user 0 runs, four queue, five overflow.
        let newest = run_with(ShedPolicy::RejectNewest);
        assert_eq!((newest.shed, newest.outcomes.len()), (5, 5));
        let survivors: Vec<usize> = newest.outcomes.iter().map(|o| o.user).collect();
        assert_eq!(survivors, vec![0, 1, 2, 3, 4], "reject-newest keeps the early arrivals");

        let oldest = run_with(ShedPolicy::RejectOldest);
        assert_eq!((oldest.shed, oldest.outcomes.len()), (5, 5));
        let survivors: Vec<usize> = oldest.outcomes.iter().map(|o| o.user).collect();
        assert_eq!(survivors, vec![0, 6, 7, 8, 9], "reject-oldest keeps the fresh arrivals");
    }

    #[test]
    fn codel_sheds_entries_that_outstayed_the_target_at_dequeue() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        // Every queued arrival waits ≥ 1500 ns (the first completion),
        // far past the 100 ns sojourn target: CoDel sheds them all at
        // dequeue and only the immediately admitted instance completes.
        let cfg = queue_only(1, 64, ShedPolicy::CoDel { target_ns: 100 });
        let run = open(pipeline_spec(), 1, 10)
            .run_overloaded(&mut plane, &clock, &mut res, &mut policy, None, None, &cfg)
            .unwrap();
        assert_eq!(run.outcomes.len(), 1);
        assert_eq!(run.shed, 9);
        assert_eq!(run.completed(), 1);
        assert_eq!(run.arrivals, run.completed() + run.failed + run.deadline_exceeded + run.shed);
    }
}
