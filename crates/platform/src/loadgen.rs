//! Multi-tenant load generation and the elastic control loop.
//!
//! The paper evaluates one workflow at a time; a platform serves many at
//! once. This module admits streams of workflow *instances* onto
//! **shared** [`SchedResources`] timelines through one completion-event
//! engine: every admission pops from a deterministic event queue, takes a
//! live [`ResourceView`] snapshot, asks the [`PlacementPolicy`] where the
//! instance goes, charges an optional cold start for functions landing on
//! a node for the first time, and executes the instance at its release
//! time via [`execute_compiled_at`] (the spec is compiled **once per
//! run**, not once per arrival) — so every in-flight instance
//! contends for the same per-node core lanes and per-pair links in
//! virtual time. Completion events close the loop: they gate the next
//! arrival of a closed-loop user and give the [`Autoscaler`] its
//! observation points.
//!
//! Two drivers share the engine:
//!
//! * [`OpenLoop`] — arrivals do not wait for completions (the classic
//!   serverless traffic model — users do not coordinate), so offered
//!   load can exceed capacity and queueing shows up as growing sojourn
//!   times rather than a throttled arrival stream.
//! * [`ClosedLoop`] — N virtual users each keep exactly one instance in
//!   flight: a user's next arrival fires only after its previous
//!   instance completed plus a think time. Saturation throughput is
//!   measured directly instead of read off the achieved-vs-offered gap.
//!
//! Admission is FIFO in arrival order: an earlier instance's
//! reservations are placed before a later instance's, the discipline of
//! a work-conserving platform queue. The optional [`Autoscaler`] watches
//! the windowed backlog signal from the live view at every event and
//! grows/shrinks the active node set through the resizable
//! [`SchedResources`] — capacity changes mid-run, between instances.

use bytes::Bytes;
use roadrunner_vkernel::sched::{EventQueue, ResourceView, SchedResources};
use roadrunner_vkernel::{Nanos, VirtualClock};

use crate::error::PlatformError;
use crate::metrics::{percentiles_sorted, PercentileSummary, StreamingPercentiles};
use crate::scheduler::PlacementPolicy;
use crate::workflow::{
    execute_compiled_at, CompiledWorkflow, DataPlane, TransferTiming, WorkflowSpec,
};

/// The inter-arrival process of an open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Deterministic arrivals every `interval_ns`.
    Uniform {
        /// Fixed inter-arrival gap.
        interval_ns: Nanos,
    },
    /// Poisson arrivals (exponential inter-arrival times) with the given
    /// mean, generated from a deterministic seed so runs replay
    /// identically.
    Poisson {
        /// Mean inter-arrival gap.
        mean_interval_ns: Nanos,
        /// PRNG seed.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// The first `count` arrival times (non-decreasing, starting at 0).
    pub fn times(&self, count: usize) -> Vec<Nanos> {
        match *self {
            ArrivalProcess::Uniform { interval_ns } => {
                (0..count as u64).map(|i| i * interval_ns).collect()
            }
            ArrivalProcess::Poisson { mean_interval_ns, seed } => {
                let mut state = seed;
                let mut at: Nanos = 0;
                (0..count)
                    .map(|_| {
                        let release = at;
                        // Inverse-transform sampling of Exp(1/mean) from a
                        // splitmix64 uniform draw.
                        let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                        let gap = -(1.0 - u).ln() * mean_interval_ns as f64;
                        at += gap.round() as Nanos;
                        release
                    })
                    .collect()
            }
        }
    }

    /// Mean inter-arrival gap (exact for uniform, the distribution mean
    /// for Poisson).
    pub fn mean_interval_ns(&self) -> Nanos {
        match *self {
            ArrivalProcess::Uniform { interval_ns } => interval_ns,
            ArrivalProcess::Poisson { mean_interval_ns, .. } => mean_interval_ns,
        }
    }

    /// The same process re-seeded — the replication seam the sweep
    /// engine uses to run one grid cell under several arrival seeds.
    /// Uniform arrivals carry no randomness and are returned unchanged.
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            ArrivalProcess::Uniform { .. } => self,
            ArrivalProcess::Poisson { mean_interval_ns, .. } => {
                ArrivalProcess::Poisson { mean_interval_ns, seed }
            }
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`DataPlane`] wrapper that overrides placement per workflow
/// instance — how a [`PlacementPolicy`]'s decision reaches the engine.
///
/// Transfers (and therefore costs and payload bytes) still go through
/// the wrapped plane; only [`DataPlane::placement`] answers from the
/// policy's assignment, so the instance's phases land on the scheduler
/// timelines of the nodes the policy chose.
pub struct Placed<'a> {
    inner: &'a mut dyn DataPlane,
    names: Vec<String>,
    nodes: Vec<usize>,
}

impl<'a> Placed<'a> {
    /// Wraps `inner`, mapping `spec`'s functions (in DAG node order) to
    /// `assignment`'s nodes.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover every function of `spec`.
    pub fn new(inner: &'a mut dyn DataPlane, spec: &WorkflowSpec, assignment: &[usize]) -> Self {
        let names: Vec<String> = spec.functions().iter().map(|&f| f.to_owned()).collect();
        assert_eq!(
            names.len(),
            assignment.len(),
            "assignment must cover every function of the workflow"
        );
        Self { inner, names, nodes: assignment.to_vec() }
    }
}

/// The one definition of assignment-override placement resolution,
/// shared by [`Placed`] and the engine-internal [`InstancePlane`]:
/// `function`'s position in `names` indexes `nodes`; unlisted functions
/// fall back to the wrapped plane's own placement.
fn assigned_placement(
    names: &[String],
    nodes: &[usize],
    inner: &dyn DataPlane,
    function: &str,
) -> Option<usize> {
    names
        .iter()
        .position(|n| n == function)
        .map(|i| nodes[i])
        .or_else(|| inner.placement(function))
}

impl DataPlane for Placed<'_> {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.inner.transfer(from, to, payload)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        self.inner.transfer_detailed(from, to, payload)
    }

    fn placement(&self, function: &str) -> Option<usize> {
        assigned_placement(&self.names, &self.nodes, self.inner, function)
    }
}

/// The engine-internal, allocation-free sibling of [`Placed`]: borrows
/// the run-wide function-name list (computed once per run, not once per
/// instance) and the policy's assignment for this instance.
struct InstancePlane<'a, 'b> {
    inner: &'a mut dyn DataPlane,
    names: &'b [String],
    nodes: &'b [usize],
}

impl DataPlane for InstancePlane<'_, '_> {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.inner.transfer(from, to, payload)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        self.inner.transfer_detailed(from, to, payload)
    }

    fn placement(&self, function: &str) -> Option<usize> {
        assigned_placement(self.names, self.nodes, self.inner, function)
    }
}

/// One admitted workflow instance's outcome.
#[derive(Debug, Clone)]
pub struct InstanceOutcome {
    /// Instance index in admission order.
    pub instance: usize,
    /// The virtual user that issued the instance (equals `instance` for
    /// open-loop runs, the user slot for closed-loop runs).
    pub user: usize,
    /// Arrival time on the shared timescale.
    pub release_ns: Nanos,
    /// Cold-start delay charged before the instance's edges could start
    /// (0 when every function was already warm on its node).
    pub cold_start_ns: Nanos,
    /// When the instance's last edge finished.
    pub finish_ns: Nanos,
    /// Sojourn time: `finish_ns - release_ns` (cold start + queueing +
    /// service).
    pub sojourn_ns: Nanos,
    /// The nodes the policy assigned, indexed by DAG node.
    pub assignment: Vec<usize>,
}

/// One autoscaler decision, for the scale-event trace the elastic
/// experiments emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// When the decision fired (virtual time).
    pub at_ns: Nanos,
    /// Direction.
    pub action: ScaleAction,
    /// Active node count after the action.
    pub nodes_after: usize,
    /// The windowed mean-backlog signal that triggered it.
    pub signal_ns: Nanos,
}

/// Direction of a scale event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// A node was added.
    Up,
    /// The last node was removed.
    Down,
}

/// Aggregate result of one load-generation run (open- or closed-loop).
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Per-instance outcomes in admission order.
    pub outcomes: Vec<InstanceOutcome>,
    /// First release to last finish — the horizon utilizations are
    /// normalized by. 0 for an empty run.
    pub horizon_ns: Nanos,
    /// Offered arrival rate (instances per second of virtual time,
    /// `1 / mean inter-arrival gap`) for open-loop runs; for closed-loop
    /// runs this equals the achieved rate (a closed loop offers exactly
    /// what completes). Note that achieved throughput
    /// ([`LoadRun::throughput_rps`]) can slightly exceed this under
    /// light open load with few instances: the horizon ends at the last
    /// *completion*, which then trails the last arrival by less than one
    /// inter-arrival gap.
    pub offered_rps: f64,
    /// Core-lane utilization over the horizon: Σ reserved CPU time
    /// divided by the **time-weighted** active core-lane capacity
    /// (∫ active lanes dt across the event timeline), so the figure
    /// stays comparable when an autoscaler resizes the cluster mid-run.
    /// For fixed capacity this reduces to the classic
    /// `reserved / (lanes × horizon)`.
    pub cpu_utilization: f64,
    /// Link utilization over the horizon (same time-weighted
    /// normalization).
    pub link_utilization: f64,
    /// The autoscaler's decision trace (empty without an autoscaler).
    pub scale_events: Vec<ScaleEvent>,
    /// Active node count when the run ended.
    pub final_nodes: usize,
    /// Lazily sorted sojourn sample, so repeated percentile queries below
    /// the streaming threshold sort the run once instead of per call.
    /// Filled on the first [`sojourn_percentiles`](Self::sojourn_percentiles)
    /// call; callers that mutate `outcomes` afterwards (the engine never
    /// does) must treat the run as a new value — clone before mutating —
    /// or the cached digest goes stale.
    sorted_sojourns: std::sync::OnceLock<Vec<Nanos>>,
}

/// Instance-count threshold above which [`LoadRun::sojourn_percentiles`]
/// switches from the exact nearest-rank digest (sorts a full copy) to
/// the constant-space streaming P² digest.
pub const STREAMING_DIGEST_MIN: usize = 4_096;

impl LoadRun {
    /// Completed instances per second of virtual time over the horizon.
    ///
    /// Empty-run contract: an empty run reports `0.0` (nothing
    /// completed), and a non-empty run whose horizon is zero (every
    /// instance completed at its release instant) reports
    /// `f64::INFINITY` — so `0.0` always means "no throughput", never
    /// "instant throughput".
    pub fn throughput_rps(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        if self.horizon_ns == 0 {
            return f64::INFINITY;
        }
        self.outcomes.len() as f64 * 1e9 / self.horizon_ns as f64
    }

    /// Sojourn-time percentile digest; `None` for an empty run. Uses the
    /// exact nearest-rank path below [`STREAMING_DIGEST_MIN`] instances
    /// and the streaming P² estimator at or above it (large runs would
    /// otherwise sort a full copy per call). The exact path caches its
    /// sorted sample in the run, so the second and later queries are
    /// rank lookups, not fresh sorts.
    pub fn sojourn_percentiles(&self) -> Option<PercentileSummary> {
        if self.outcomes.len() >= STREAMING_DIGEST_MIN {
            let mut digest = StreamingPercentiles::new();
            for o in &self.outcomes {
                digest.record(o.sojourn_ns);
            }
            digest.summary()
        } else {
            let sorted = self.sorted_sojourns.get_or_init(|| {
                let mut sojourns: Vec<Nanos> =
                    self.outcomes.iter().map(|o| o.sojourn_ns).collect();
                sojourns.sort_unstable();
                sojourns
            });
            percentiles_sorted(sorted)
        }
    }

    /// The slowest instance's sojourn; `None` for an empty run (so an
    /// empty run is distinguishable from one whose slowest sojourn was
    /// genuinely zero).
    pub fn max_sojourn_ns(&self) -> Option<Nanos> {
        self.outcomes.iter().map(|o| o.sojourn_ns).max()
    }

    /// Total cold-start time charged across all instances.
    pub fn cold_start_total_ns(&self) -> Nanos {
        self.outcomes.iter().map(|o| o.cold_start_ns).sum()
    }

    /// Number of instances that paid a nonzero cold start.
    pub fn cold_starts(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cold_start_ns > 0).count()
    }
}

/// An open-loop workload: `instances` copies of `spec` carrying
/// `payload`, admitted per `arrivals`.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    /// The workflow every instance runs.
    pub spec: WorkflowSpec,
    /// Payload injected into every instance's roots.
    pub payload: Bytes,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of instances to admit.
    pub instances: usize,
    /// Fig. 2a-style cold-start cost charged (on the node's CPU
    /// timeline) the first time each function lands on a node; `None`
    /// admits every instance warm.
    pub cold_start_ns: Option<Nanos>,
}

impl OpenLoop {
    /// Admits the workload onto `resources`, placing each instance with
    /// `policy` and driving every edge through `plane`.
    ///
    /// `resources` is *not* reset: callers own the timescale and may
    /// pre-load it (e.g. with background traffic). Utilizations are
    /// computed from the reservations this run added, over its own
    /// horizon.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
    ) -> Result<LoadRun, PlatformError> {
        self.run_elastic(plane, clock, resources, policy, None)
    }

    /// [`run`](Self::run) with an [`Autoscaler`] in the loop: capacity
    /// grows and shrinks between instances as the controller reacts to
    /// the live backlog signal.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run_elastic(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
    ) -> Result<LoadRun, PlatformError> {
        let mut run = drive(
            &self.spec,
            &self.payload,
            Admission::Open { releases: self.arrivals.times(self.instances) },
            self.cold_start_ns,
            plane,
            clock,
            resources,
            policy,
            autoscaler,
        )?;
        // Empty-run contract: a run that admits nothing offers nothing.
        run.offered_rps = if self.instances == 0 {
            0.0
        } else {
            1e9 / self.arrivals.mean_interval_ns().max(1) as f64
        };
        Ok(run)
    }
}

/// A closed-loop workload: `users` virtual users each keep one instance
/// of `spec` in flight, thinking for `think_ns` between a completion and
/// their next request, until `instances` total have completed.
///
/// Concurrency is bounded by construction — at most `users` instances
/// ever overlap — and each user's arrivals are gated on its own
/// completions, so throughput saturates at what the cluster actually
/// sustains (the directly measured saturation throughput the elastic
/// experiments report).
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    /// The workflow every instance runs.
    pub spec: WorkflowSpec,
    /// Payload injected into every instance's roots.
    pub payload: Bytes,
    /// Number of concurrent virtual users.
    pub users: usize,
    /// Think time between a user's completion and its next arrival.
    pub think_ns: Nanos,
    /// Ramp-up stagger: user `u`'s first arrival fires at `u × ramp_ns`
    /// (0 starts every user at once). Ramping is how closed-loop
    /// harnesses avoid measuring the artificial thundering herd of a
    /// simultaneous start instead of steady-state queueing.
    pub ramp_ns: Nanos,
    /// Total instances to admit across all users.
    pub instances: usize,
    /// Fig. 2a-style cold-start cost charged (on the node's CPU
    /// timeline) the first time each function lands on a node; `None`
    /// admits every instance warm.
    pub cold_start_ns: Option<Nanos>,
}

impl ClosedLoop {
    /// Drives the closed loop onto `resources` (see [`OpenLoop::run`]
    /// for the sharing semantics).
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
    ) -> Result<LoadRun, PlatformError> {
        self.run_elastic(plane, clock, resources, policy, None)
    }

    /// [`run`](Self::run) with an [`Autoscaler`] in the loop.
    ///
    /// # Errors
    ///
    /// Propagates the first validation or transfer error.
    pub fn run_elastic(
        &self,
        plane: &mut dyn DataPlane,
        clock: &VirtualClock,
        resources: &mut SchedResources,
        policy: &mut dyn PlacementPolicy,
        autoscaler: Option<&mut Autoscaler>,
    ) -> Result<LoadRun, PlatformError> {
        assert!(self.users > 0, "a closed loop needs at least one user");
        let mut run = drive(
            &self.spec,
            &self.payload,
            Admission::Closed {
                users: self.users,
                think_ns: self.think_ns,
                ramp_ns: self.ramp_ns,
                instances: self.instances,
            },
            self.cold_start_ns,
            plane,
            clock,
            resources,
            policy,
            autoscaler,
        )?;
        // A closed loop offers exactly what it completes.
        run.offered_rps = run.throughput_rps();
        Ok(run)
    }
}

/// How the engine admits instances.
enum Admission {
    /// Pre-scheduled arrival times (instance k = user k).
    Open { releases: Vec<Nanos> },
    /// `users` slots seeded `ramp_ns` apart, each re-arming `think_ns`
    /// after its completion, until `instances` total have been admitted.
    Closed { users: usize, think_ns: Nanos, ramp_ns: Nanos, instances: usize },
}

/// Engine events: an instance arriving for admission, or one completing.
enum LoadEvent {
    Arrival { user: usize },
    Completion { user: usize },
}

/// The shared completion-event engine behind [`OpenLoop`] and
/// [`ClosedLoop`].
///
/// Events drain in deterministic time order (FIFO among equals). Each
/// arrival snapshots the live view, places, charges cold starts, and
/// executes the instance at its release; each completion re-arms its
/// closed-loop user. The autoscaler (when present) observes at *every*
/// event, so it sees both pressure building (arrivals) and draining
/// (completions).
#[allow(clippy::too_many_arguments)]
fn drive(
    spec: &WorkflowSpec,
    payload: &Bytes,
    admission: Admission,
    cold_start_ns: Option<Nanos>,
    plane: &mut dyn DataPlane,
    clock: &VirtualClock,
    resources: &mut SchedResources,
    policy: &mut dyn PlacementPolicy,
    mut autoscaler: Option<&mut Autoscaler>,
) -> Result<LoadRun, PlatformError> {
    let (cpu0, _) = resources.cpu_reserved();
    let (link0, _) = resources.link_reserved();

    // Per-run precomputation: validate/topo-sort the spec once for every
    // instance (the compiled form), and intern the function-name list the
    // placement override needs — neither is per-arrival work.
    let compiled = CompiledWorkflow::compile(spec)?;
    let fn_names: Vec<String> = spec.functions().iter().map(|&f| f.to_owned()).collect();
    // Scratch snapshot refreshed in place at every observation point:
    // the per-event view is allocation-free in steady state.
    let mut view = ResourceView::default();

    let mut queue: EventQueue<LoadEvent> = EventQueue::new();
    // Closed-loop admission bookkeeping: how many instances have been
    // admitted so far, against the total bound.
    let (mut admitted, instance_bound, think_ns) = match &admission {
        Admission::Open { releases } => {
            for (user, &at) in releases.iter().enumerate() {
                queue.push(at, LoadEvent::Arrival { user });
            }
            (releases.len(), releases.len(), 0)
        }
        Admission::Closed { users, think_ns, ramp_ns, instances } => {
            let seed = (*users).min(*instances);
            for user in 0..seed {
                queue.push(user as Nanos * ramp_ns, LoadEvent::Arrival { user });
            }
            (seed, *instances, *think_ns)
        }
    };
    let mut outcomes: Vec<InstanceOutcome> = Vec::new();
    // Warm set for cold-start admission: (function index, node).
    let mut warm: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut known_nodes = resources.node_count();
    // Time-weighted active-lane capacity (∫ lanes dt over the event
    // timeline) — the utilization denominators under elastic capacity.
    // Lane counts only change at scale events, so they are cached and
    // refreshed when the node count moves.
    let mut prev_event_ns: Option<Nanos> = None;
    let mut cpu_lane_ns: u128 = 0;
    let mut link_lane_ns: u128 = 0;
    let mut cpu_lanes = resources.cpu_lanes();
    let mut link_lanes = resources.link_lanes();

    while let Some((now, event)) = queue.pop() {
        // Integrate the lane capacity that was active since the last
        // event, before the autoscaler gets a chance to change it.
        if let Some(prev) = prev_event_ns {
            let dt = u128::from(now - prev);
            cpu_lane_ns += dt * cpu_lanes as u128;
            link_lane_ns += dt * link_lanes as u128;
        }
        prev_event_ns = Some(now);
        let observed = match autoscaler.as_deref_mut() {
            Some(scaler) => {
                scaler.observe_into(now, resources, &mut view);
                true
            }
            None => false,
        };
        let nodes_now = resources.node_count();
        if nodes_now != known_nodes {
            // Scale-in drops node timelines: anything warmed on a
            // removed node must re-pay its cold start if the index is
            // later re-added (a re-added node is a brand-new machine).
            if nodes_now < known_nodes {
                warm.retain(|&(_, node)| node < nodes_now);
            }
            cpu_lanes = resources.cpu_lanes();
            link_lanes = resources.link_lanes();
            known_nodes = nodes_now;
        }
        match event {
            LoadEvent::Arrival { user } => {
                if !observed {
                    resources.view_into(now, &mut view);
                }
                let assignment = policy.place(spec, &view);
                // Charge cold starts: every (function, node) pair seen
                // for the first time reserves the fig2a-style cost on
                // the node's CPU, delaying this instance's release.
                let mut release = now;
                if let Some(cold) = cold_start_ns {
                    for (fi, &node) in assignment.iter().enumerate() {
                        if warm.insert((fi, node)) {
                            let start = resources.cpu(node).reserve(now, cold);
                            release = release.max(start + cold);
                        }
                    }
                }
                let mut placed =
                    InstancePlane { inner: plane, names: &fn_names, nodes: &assignment };
                let run = execute_compiled_at(
                    &mut placed,
                    clock,
                    &compiled,
                    payload.clone(),
                    resources,
                    release,
                )?;
                let finish = release + run.total_latency_ns;
                let instance = outcomes.len();
                outcomes.push(InstanceOutcome {
                    instance,
                    user,
                    release_ns: now,
                    cold_start_ns: release - now,
                    finish_ns: finish,
                    sojourn_ns: finish - now,
                    assignment,
                });
                queue.push(finish, LoadEvent::Completion { user });
            }
            LoadEvent::Completion { user } => {
                // Closed loop: the freed user thinks, then re-arrives —
                // the arrival is gated on this completion by
                // construction.
                if matches!(admission, Admission::Closed { .. }) && admitted < instance_bound {
                    admitted += 1;
                    queue.push(now + think_ns, LoadEvent::Arrival { user });
                }
            }
        }
    }

    let first = outcomes.first().map(|o| o.release_ns).unwrap_or(0);
    let last = outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(first);
    let horizon_ns = last - first;
    let (cpu1, _) = resources.cpu_reserved();
    let (link1, _) = resources.link_reserved();
    let util = |used: Nanos, lane_ns: u128| {
        if lane_ns == 0 {
            0.0
        } else {
            used as f64 / lane_ns as f64
        }
    };
    Ok(LoadRun {
        outcomes,
        horizon_ns,
        offered_rps: 0.0, // the drivers fill this in
        cpu_utilization: util(cpu1 - cpu0, cpu_lane_ns),
        link_utilization: util(link1 - link0, link_lane_ns),
        scale_events: autoscaler.map(|a| a.events().to_vec()).unwrap_or_default(),
        final_nodes: resources.node_count(),
        sorted_sojourns: std::sync::OnceLock::new(),
    })
}

/// Configuration of the backlog-driven [`Autoscaler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalerConfig {
    /// Never shrink below this many nodes.
    pub min_nodes: usize,
    /// Never grow beyond this many nodes.
    pub max_nodes: usize,
    /// Core count of every node the controller adds.
    pub node_cores: u32,
    /// Scale **up** when the windowed mean per-node backlog exceeds
    /// this.
    pub scale_up_backlog_ns: Nanos,
    /// Scale **down** when the windowed mean per-node backlog falls
    /// below this *and* the last node has fully drained.
    pub scale_down_backlog_ns: Nanos,
    /// Observation window; also the minimum gap between two decisions
    /// (the cooldown that keeps the controller from flapping on one
    /// bursty arrival).
    pub window_ns: Nanos,
}

/// The elastic controller: watches the windowed mean-backlog signal from
/// live [`ResourceView`] snapshots and resizes the [`SchedResources`]
/// between instances.
///
/// The engine calls [`observe`](Self::observe) at every load event
/// (arrivals *and* completions). Each observation appends the view's
/// [`mean_backlog_ns`](ResourceView::mean_backlog_ns) to a sliding
/// window; once per `window_ns` the controller compares the window mean
/// against the two thresholds and adds ([`SchedResources::add_node`]) or
/// removes ([`SchedResources::remove_last_node`]) one node. Scale-in is
/// drain-safe: the last node is only removed once its own CPU backlog
/// *and* every one of its pair links have drained, so no in-flight
/// reservation is orphaned mid-instance.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    /// Sliding window of (time, mean-backlog) samples.
    window: Vec<(Nanos, Nanos)>,
    last_decision_ns: Nanos,
    events: Vec<ScaleEvent>,
}

impl Autoscaler {
    /// A fresh controller.
    ///
    /// # Panics
    ///
    /// Panics if `min_nodes` is zero or exceeds `max_nodes`, or if
    /// `window_ns` is zero.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        assert!(cfg.min_nodes > 0, "the cluster cannot shrink to zero nodes");
        assert!(cfg.min_nodes <= cfg.max_nodes, "min_nodes must not exceed max_nodes");
        assert!(cfg.window_ns > 0, "a zero observation window would decide on every event");
        Self { cfg, window: Vec::new(), last_decision_ns: 0, events: Vec::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// The decisions taken so far, in order.
    pub fn events(&self) -> &[ScaleEvent] {
        &self.events
    }

    /// Forgets window samples and the decision trace (between runs);
    /// keeps the configuration.
    pub fn reset(&mut self) {
        self.window.clear();
        self.last_decision_ns = 0;
        self.events.clear();
    }

    /// One observation at virtual time `now`: record the live backlog
    /// signal and, at most once per window, act on it. Returns a view
    /// that is **current after any decision** (freshly re-snapshotted
    /// when the observation resized the cluster), so callers placing an
    /// instance at the same event need not snapshot twice.
    ///
    /// Allocates a fresh view; the load engine's per-event path uses
    /// [`observe_into`](Self::observe_into) with a reusable scratch view
    /// instead.
    pub fn observe(&mut self, now: Nanos, resources: &mut SchedResources) -> ResourceView {
        let mut view = ResourceView::default();
        self.observe_into(now, resources, &mut view);
        view
    }

    /// [`observe`](Self::observe), refreshing the caller's scratch `view`
    /// in place (allocation-free in steady state). On return `view` is
    /// current **after** any scaling decision this observation took.
    pub fn observe_into(
        &mut self,
        now: Nanos,
        resources: &mut SchedResources,
        view: &mut ResourceView,
    ) {
        resources.view_into(now, view);
        self.window.push((now, view.mean_backlog_ns()));
        let cutoff = now.saturating_sub(self.cfg.window_ns);
        self.window.retain(|&(t, _)| t >= cutoff);
        if now.saturating_sub(self.last_decision_ns) < self.cfg.window_ns {
            return;
        }
        let signal = self.window.iter().map(|&(_, b)| b).sum::<Nanos>()
            / self.window.len().max(1) as u64;
        let nodes = resources.node_count();
        if signal > self.cfg.scale_up_backlog_ns && nodes < self.cfg.max_nodes {
            resources.add_node(self.cfg.node_cores);
            self.events.push(ScaleEvent {
                at_ns: now,
                action: ScaleAction::Up,
                nodes_after: nodes + 1,
                signal_ns: signal,
            });
            self.last_decision_ns = now;
        } else if signal < self.cfg.scale_down_backlog_ns
            && nodes > self.cfg.min_nodes
            && view.node(nodes - 1).backlog_ns == 0
            // The departing node's pair links must have drained too —
            // an in-flight transfer still occupies its wire even after
            // the node's own CPU went idle.
            && (0..nodes - 1).all(|o| view.link_backlog_between(o, nodes - 1) == 0)
        {
            resources.remove_last_node();
            self.events.push(ScaleEvent {
                at_ns: now,
                action: ScaleAction::Down,
                nodes_after: nodes - 1,
                signal_ns: signal,
            });
            self.last_decision_ns = now;
        } else {
            return;
        }
        resources.view_into(now, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{LocalityFirst, SpreadLoad};
    use crate::workflow::execute_concurrent;

    /// A plane charging fixed phase costs, payload-independent, so
    /// schedules are easy to reason about.
    struct FixedPlane {
        clock: VirtualClock,
        prepare_ns: Nanos,
        transfer_ns: Nanos,
        consume_ns: Nanos,
    }

    impl FixedPlane {
        fn new(clock: VirtualClock) -> Self {
            Self { clock, prepare_ns: 200, transfer_ns: 1_000, consume_ns: 300 }
        }
    }

    impl DataPlane for FixedPlane {
        fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
            self.clock.advance(self.prepare_ns + self.transfer_ns + self.consume_ns);
            Ok(p)
        }

        fn transfer_detailed(
            &mut self,
            from: &str,
            to: &str,
            p: Bytes,
        ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
            let timing = TransferTiming {
                prepare_ns: self.prepare_ns,
                transfer_ns: self.transfer_ns,
                consume_ns: self.consume_ns,
            };
            let received = self.transfer(from, to, p)?;
            Ok((received, Some(timing)))
        }
    }

    fn pipeline_spec() -> WorkflowSpec {
        WorkflowSpec::sequence("pipe", "t", ["a".to_owned(), "b".to_owned()])
    }

    fn open(spec: WorkflowSpec, interval_ns: Nanos, instances: usize) -> OpenLoop {
        OpenLoop {
            spec,
            payload: Bytes::new(),
            arrivals: ArrivalProcess::Uniform { interval_ns },
            instances,
            cold_start_ns: None,
        }
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let times = ArrivalProcess::Uniform { interval_ns: 250 }.times(4);
        assert_eq!(times, vec![0, 250, 500, 750]);
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_near_their_mean() {
        let process = ArrivalProcess::Poisson { mean_interval_ns: 1_000_000, seed: 7 };
        let a = process.times(400);
        let b = process.times(400);
        assert_eq!(a, b, "same seed must replay identically");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = a[399] as f64 / 399.0;
        assert!(
            (500_000.0..2_000_000.0).contains(&mean_gap),
            "empirical mean gap {mean_gap} too far from 1e6"
        );
        let other = ArrivalProcess::Poisson { mean_interval_ns: 1_000_000, seed: 8 }.times(400);
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn placed_overrides_placement_and_forwards_transfers() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let mut placed = Placed::new(&mut plane, &spec, &[2, 5]);
        assert_eq!(placed.placement("a"), Some(2));
        assert_eq!(placed.placement("b"), Some(5));
        assert_eq!(placed.placement("ghost"), None);
        let out = placed.transfer("a", "b", Bytes::from_static(b"xyz")).unwrap();
        assert_eq!(&out[..], b"xyz");
    }

    #[test]
    fn contention_never_speeds_an_instance_up() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();

        // Uncontended makespan of one instance under locality placement.
        let mut fresh = SchedResources::heterogeneous(&[1, 1]);
        let mut placed = Placed::new(&mut plane, &spec, &[0, 0]);
        let solo = execute_concurrent(&mut placed, &clock, &spec, Bytes::new(), &mut fresh)
            .unwrap()
            .total_latency_ns;
        assert_eq!(solo, 1_500);

        // Heavy load: arrivals far faster than the 1-core nodes drain.
        let load = open(spec.clone(), 100, 12);
        let mut shared = SchedResources::heterogeneous(&[1, 1]);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut shared, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 12);
        for outcome in &run.outcomes {
            assert!(
                outcome.sojourn_ns >= solo,
                "instance {} finished in {} < uncontended {}",
                outcome.instance,
                outcome.sojourn_ns,
                solo
            );
        }
        // Queueing builds: the last instance waits longer than the first.
        assert!(run.outcomes[11].sojourn_ns > run.outcomes[0].sojourn_ns);
        // Overload: achieved throughput falls short of offered.
        assert!(run.throughput_rps() < run.offered_rps);
    }

    #[test]
    fn light_load_leaves_instances_at_their_solo_makespan() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let load = open(spec.clone(), 1_000_000, 5);
        let mut shared = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut shared, &mut policy).unwrap();
        // Arrivals 1 ms apart, service 1.5 µs: nothing ever queues.
        assert!(run.outcomes.iter().all(|o| o.sojourn_ns == 1_500));
        let p = run.sojourn_percentiles().unwrap();
        assert_eq!((p.p50_ns, p.p95_ns, p.p99_ns), (1_500, 1_500, 1_500));
        assert_eq!(run.max_sojourn_ns(), Some(1_500));
    }

    #[test]
    fn spread_policy_pays_the_link_locality_avoids() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let load = open(spec.clone(), 10_000, 4);

        let mut res = SchedResources::new(2, 4);
        let mut locality = LocalityFirst::new();
        let packed = load.run(&mut plane, &clock, &mut res, &mut locality).unwrap();
        assert!((packed.link_utilization - 0.0).abs() < f64::EPSILON);
        assert!(packed.cpu_utilization > 0.0);

        let mut res = SchedResources::new(2, 4);
        let mut spread = SpreadLoad::new();
        let crossed = load.run(&mut plane, &clock, &mut res, &mut spread).unwrap();
        assert!(crossed.link_utilization > 0.0);
        // Every instance's a→b crosses nodes under spread.
        assert!(crossed.outcomes.iter().all(|o| o.assignment[0] != o.assignment[1]));
    }

    #[test]
    fn transfer_errors_propagate_out_of_the_loop() {
        struct Failing;
        impl DataPlane for Failing {
            fn transfer(&mut self, _: &str, _: &str, _: Bytes) -> Result<Bytes, PlatformError> {
                Err(PlatformError::Transfer("down".into()))
            }
        }
        let clock = VirtualClock::new();
        let load = open(pipeline_spec(), 1, 2);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        assert!(matches!(
            load.run(&mut Failing, &clock, &mut res, &mut policy),
            Err(PlatformError::Transfer(_))
        ));
    }

    #[test]
    fn empty_run_reports_zeroes_not_nan() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = open(pipeline_spec(), 1_000, 0);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert!(run.outcomes.is_empty());
        assert_eq!(run.horizon_ns, 0);
        assert_eq!(run.throughput_rps(), 0.0);
        assert_eq!(run.offered_rps, 0.0, "an empty run offers nothing");
        assert_eq!(run.max_sojourn_ns(), None);
        assert!(run.sojourn_percentiles().is_none());
        assert_eq!(run.cpu_utilization, 0.0);
        assert_eq!(run.link_utilization, 0.0);
    }

    #[test]
    fn single_instance_run_is_consistent() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = open(pipeline_spec(), 1_000, 1);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 1);
        assert_eq!(run.horizon_ns, 1_500);
        assert!(run.throughput_rps().is_finite());
        assert!(run.throughput_rps() > 0.0);
        assert_eq!(run.max_sojourn_ns(), Some(1_500));
        let p = run.sojourn_percentiles().unwrap();
        assert_eq!((p.count, p.p50_ns, p.p99_ns), (1, 1_500, 1_500));
    }

    #[test]
    fn closed_loop_gates_arrivals_on_completions() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 2,
            think_ns: 400,
            ramp_ns: 0,
            instances: 8,
            cold_start_ns: None,
        };
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 8);
        // Per user: arrival k is exactly completion k-1 plus think time.
        for user in 0..2 {
            let mine: Vec<&InstanceOutcome> =
                run.outcomes.iter().filter(|o| o.user == user).collect();
            assert_eq!(mine.len(), 4);
            for pair in mine.windows(2) {
                assert_eq!(pair[1].release_ns, pair[0].finish_ns + 400);
            }
        }
        // Closed loop: offered equals achieved by definition.
        assert_eq!(run.offered_rps, run.throughput_rps());
    }

    #[test]
    fn closed_loop_concurrency_never_exceeds_users() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 3,
            think_ns: 0,
            ramp_ns: 0,
            instances: 12,
            cold_start_ns: None,
        };
        let mut res = SchedResources::new(1, 1);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 12);
        // At any instance's release, at most `users` instances overlap.
        for o in &run.outcomes {
            let in_flight = run
                .outcomes
                .iter()
                .filter(|p| p.release_ns <= o.release_ns && p.finish_ns > o.release_ns)
                .count();
            assert!(in_flight <= 3, "{in_flight} instances in flight at {}", o.release_ns);
        }
    }

    #[test]
    fn closed_loop_with_fewer_instances_than_users() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 8,
            think_ns: 100,
            ramp_ns: 0,
            instances: 3,
            cold_start_ns: None,
        };
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        assert_eq!(run.outcomes.len(), 3);
    }

    #[test]
    fn cold_start_charged_once_per_function_and_node() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let mut load = open(spec, 1_000_000, 3);
        load.cold_start_ns = Some(50_000);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        // First instance pays both functions' cold starts; later
        // instances land warm (locality keeps them on the same node —
        // arrivals are 1 ms apart so the node has drained each time).
        assert_eq!(run.outcomes[0].cold_start_ns, 50_000);
        assert_eq!(run.outcomes[0].sojourn_ns, 50_000 + 1_500);
        assert_eq!(run.outcomes[1].cold_start_ns, 0);
        assert_eq!(run.outcomes[1].sojourn_ns, 1_500);
        assert_eq!(run.cold_starts(), 1);
        assert_eq!(run.cold_start_total_ns(), 50_000);
    }

    #[test]
    fn cold_start_repaid_on_every_new_node() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        let load = ClosedLoop {
            spec,
            payload: Bytes::new(),
            users: 1,
            think_ns: 0,
            ramp_ns: 0,
            instances: 4,
            cold_start_ns: Some(10_000),
        };
        let mut res = SchedResources::new(4, 4);
        let mut policy = crate::scheduler::RoundRobin::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        // Round-robin moves every instance to a fresh node: each pays.
        assert_eq!(run.cold_starts(), 4);
        assert!(run.outcomes.iter().all(|o| o.cold_start_ns == 10_000));
    }

    #[test]
    fn autoscaler_grows_under_pressure_and_shrinks_when_idle() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let spec = pipeline_spec();
        // 40 instances arriving every 500 ns onto a single 1-core node
        // (service 1500 ns): heavy overload.
        let load = open(spec, 500, 40);
        let mut res = SchedResources::heterogeneous(&[1]);
        let mut policy = LocalityFirst::new();
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 4,
            node_cores: 1,
            scale_up_backlog_ns: 3_000,
            scale_down_backlog_ns: 500,
            window_ns: 2_000,
        });
        let run = load
            .run_elastic(&mut plane, &clock, &mut res, &mut policy, Some(&mut scaler))
            .unwrap();
        assert!(
            run.scale_events.iter().any(|e| e.action == ScaleAction::Up),
            "overload must trigger scale-up: {:?}",
            run.scale_events
        );
        assert!(run.final_nodes > 1);
        // And the elastic run beats the fixed-capacity run's tail.
        let clock2 = VirtualClock::new();
        let mut plane2 = FixedPlane::new(clock2.clone());
        let load2 = open(pipeline_spec(), 500, 40);
        let mut fixed = SchedResources::heterogeneous(&[1]);
        let mut policy2 = LocalityFirst::new();
        let fixed_run = load2.run(&mut plane2, &clock2, &mut fixed, &mut policy2).unwrap();
        let p_el = run.sojourn_percentiles().unwrap();
        let p_fx = fixed_run.sojourn_percentiles().unwrap();
        assert!(
            p_el.p95_ns < p_fx.p95_ns,
            "elastic p95 {} must beat fixed p95 {}",
            p_el.p95_ns,
            p_fx.p95_ns
        );
    }

    #[test]
    fn autoscaler_scales_down_after_the_surge_drains() {
        let mut res = SchedResources::heterogeneous(&[1, 1, 1]);
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 3,
            node_cores: 1,
            scale_up_backlog_ns: 1_000_000,
            scale_down_backlog_ns: 100,
            window_ns: 1_000,
        });
        // Idle cluster observed well past the window: scale down fires.
        scaler.observe(5_000, &mut res);
        assert_eq!(res.node_count(), 2);
        assert_eq!(scaler.events().len(), 1);
        assert_eq!(scaler.events()[0].action, ScaleAction::Down);
        // Cooldown: an immediate second observation does nothing…
        scaler.observe(5_100, &mut res);
        assert_eq!(res.node_count(), 2);
        // …but after another full window the next shrink fires, and the
        // floor holds.
        scaler.observe(6_500, &mut res);
        assert_eq!(res.node_count(), 1);
        scaler.observe(9_000, &mut res);
        assert_eq!(res.node_count(), 1, "min_nodes is a floor");
        scaler.reset();
        assert!(scaler.events().is_empty());
    }

    #[test]
    fn cold_start_repaid_when_a_scaled_in_node_returns() {
        // Two users burst at t=0 onto two 1-core nodes (both pay cold
        // starts), the cluster drains and the controller scales in to
        // one node, then the next burst scales back out — the re-added
        // node is a brand-new machine and must charge its cold starts
        // again, not inherit the removed node's warm set.
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = ClosedLoop {
            spec: pipeline_spec(),
            payload: Bytes::new(),
            users: 2,
            think_ns: 6_000,
            ramp_ns: 0,
            instances: 4,
            cold_start_ns: Some(1_000),
        };
        let mut res = SchedResources::heterogeneous(&[1, 1]);
        let mut policy = LocalityFirst::new();
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 2,
            node_cores: 1,
            scale_up_backlog_ns: 600,
            scale_down_backlog_ns: 500,
            window_ns: 1_000,
        });
        let run = load
            .run_elastic(&mut plane, &clock, &mut res, &mut policy, Some(&mut scaler))
            .unwrap();
        // Drain → scale-in, burst → scale-out (a final drain-time
        // scale-in may trail at the last completion).
        let actions: Vec<ScaleAction> = run.scale_events.iter().map(|e| e.action).collect();
        assert!(
            actions.starts_with(&[ScaleAction::Down, ScaleAction::Up]),
            "expected drain → scale-in → burst → scale-out: {:?}",
            run.scale_events
        );
        // Burst 1: both instances cold (one per node).
        assert_eq!(run.outcomes[0].cold_start_ns, 2_000);
        assert_eq!(run.outcomes[1].cold_start_ns, 2_000);
        // Burst 2: the packed node is warm, the re-added node is not.
        assert_eq!(run.outcomes[2].cold_start_ns, 0);
        assert_eq!(
            run.outcomes[3].cold_start_ns, 2_000,
            "a re-added node is a fresh machine and must re-pay cold starts"
        );
    }

    #[test]
    fn autoscaler_does_not_remove_a_node_with_busy_links() {
        let mut res = SchedResources::mesh(&[1, 1, 1]);
        // Node 2's CPU is idle but its wire to node 0 still drains.
        res.link_between(0, 2).reserve(0, 2_000);
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 3,
            node_cores: 1,
            scale_up_backlog_ns: 1_000_000,
            scale_down_backlog_ns: 1_000_000,
            window_ns: 500,
        });
        scaler.observe(1_000, &mut res);
        assert_eq!(res.node_count(), 3, "a node with an in-flight transfer must stay");
        // Once the wire drains, scale-in proceeds.
        scaler.observe(3_000, &mut res);
        assert_eq!(res.node_count(), 2);
    }

    #[test]
    fn autoscaler_does_not_remove_a_backlogged_node() {
        let mut res = SchedResources::heterogeneous(&[1, 1]);
        // Last node still draining: mean backlog is low, node backlog not.
        res.cpu(1).reserve(0, 2_000);
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            min_nodes: 1,
            max_nodes: 2,
            node_cores: 1,
            scale_up_backlog_ns: 1_000_000,
            scale_down_backlog_ns: 1_500,
            window_ns: 500,
        });
        scaler.observe(1_000, &mut res);
        assert_eq!(res.node_count(), 2, "a draining node must not be removed");
        // Once drained, it goes.
        scaler.observe(3_000, &mut res);
        assert_eq!(res.node_count(), 1);
    }

    #[test]
    fn open_loop_outcomes_match_user_indices() {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane::new(clock.clone());
        let load = open(pipeline_spec(), 2_000, 4);
        let mut res = SchedResources::new(2, 4);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        for (i, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.instance, i);
            assert_eq!(o.user, i);
            assert_eq!(o.cold_start_ns, 0);
        }
        assert!(run.scale_events.is_empty());
        assert_eq!(run.final_nodes, 2);
    }
}
