//! Function registry: the platform's catalog of deployable bundles.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::bundle::FunctionBundle;

/// Thread-safe registry mapping function names to bundles, as a serverless
/// control plane keeps them after `deploy`/`push`.
#[derive(Debug, Default)]
pub struct FunctionRegistry {
    entries: RwLock<HashMap<String, Arc<FunctionBundle>>>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a bundle under its own name. Returns the
    /// previous bundle if one was replaced.
    pub fn register(&self, bundle: FunctionBundle) -> Option<Arc<FunctionBundle>> {
        let name = bundle.name().to_owned();
        self.entries.write().insert(name, Arc::new(bundle))
    }

    /// Looks up a bundle by name.
    pub fn get(&self, name: &str) -> Option<Arc<FunctionBundle>> {
        self.entries.read().get(name).cloned()
    }

    /// Removes a bundle; returns it if it existed.
    pub fn remove(&self, name: &str) -> Option<Arc<FunctionBundle>> {
        self.entries.write().remove(name)
    }

    /// Sorted list of registered function names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_remove() {
        let reg = FunctionRegistry::new();
        assert!(reg.is_empty());
        reg.register(FunctionBundle::wasm("a", vec![1]));
        reg.register(FunctionBundle::wasm("b", vec![2]));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("a").unwrap().size_bytes(), 1);
        assert!(reg.get("zzz").is_none());
        assert!(reg.remove("a").is_some());
        assert!(reg.remove("a").is_none());
        assert_eq!(reg.names(), vec!["b"]);
    }

    #[test]
    fn register_replaces_and_returns_old() {
        let reg = FunctionRegistry::new();
        assert!(reg.register(FunctionBundle::wasm("f", vec![0; 10])).is_none());
        let old = reg.register(FunctionBundle::wasm("f", vec![0; 20])).unwrap();
        assert_eq!(old.size_bytes(), 10);
        assert_eq!(reg.get("f").unwrap().size_bytes(), 20);
    }
}
