//! OCI-style function bundles.
//!
//! The shim "packages the Wasm VM as an OCI-compliant bundle … executed
//! as a container by high-level container managers such as containerd"
//! (paper §3.2.5). A [`FunctionBundle`] is that artifact: the runnable
//! payload (a real encoded Wasm binary, or a container image descriptor)
//! plus the manifest metadata orchestrators read — including the
//! workflow/tenant annotations Roadrunner's trust validation checks
//! before enabling user-space mode.

use std::collections::BTreeMap;

/// Annotation key naming the workflow a function belongs to.
pub const ANNOTATION_WORKFLOW: &str = "dev.roadrunner.workflow";
/// Annotation key naming the tenant that owns a function.
pub const ANNOTATION_TENANT: &str = "dev.roadrunner.tenant";

/// What a bundle actually contains.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleKind {
    /// A WebAssembly module in (real) binary encoding.
    WasmModule {
        /// Encoded `\0asm` bytes.
        binary: Vec<u8>,
    },
    /// A container image (the baseline path); only its size matters for
    /// cold-start modelling.
    ContainerImage {
        /// Compressed image size in bytes (the paper measured ~76.9 MB).
        image_size: u64,
    },
}

/// Manifest metadata carried alongside the payload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Linear-memory cap for Wasm functions, in 64 KiB pages.
    pub memory_limit_pages: Option<u32>,
    /// Environment variables.
    pub env: Vec<(String, String)>,
    /// Free-form annotations (workflow, tenant, …), sorted for
    /// deterministic encoding.
    pub annotations: BTreeMap<String, String>,
}

/// A deployable function artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionBundle {
    name: String,
    kind: BundleKind,
    manifest: Manifest,
}

impl FunctionBundle {
    /// Creates a Wasm bundle from real module bytes.
    pub fn wasm(name: impl Into<String>, binary: Vec<u8>) -> Self {
        Self {
            name: name.into(),
            kind: BundleKind::WasmModule { binary },
            manifest: Manifest::default(),
        }
    }

    /// Creates a container-image bundle of the given size.
    pub fn container(name: impl Into<String>, image_size: u64) -> Self {
        Self {
            name: name.into(),
            kind: BundleKind::ContainerImage { image_size },
            manifest: Manifest::default(),
        }
    }

    /// Function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bundle payload.
    pub fn kind(&self) -> &BundleKind {
        &self.kind
    }

    /// Manifest metadata.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Mutable manifest access.
    pub fn manifest_mut(&mut self) -> &mut Manifest {
        &mut self.manifest
    }

    /// Sets the workflow annotation (chainable).
    pub fn with_workflow(mut self, workflow: impl Into<String>) -> Self {
        self.manifest
            .annotations
            .insert(ANNOTATION_WORKFLOW.to_owned(), workflow.into());
        self
    }

    /// Sets the tenant annotation (chainable).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.manifest.annotations.insert(ANNOTATION_TENANT.to_owned(), tenant.into());
        self
    }

    /// Sets the memory cap (chainable).
    pub fn with_memory_limit_pages(mut self, pages: u32) -> Self {
        self.manifest.memory_limit_pages = Some(pages);
        self
    }

    /// Workflow annotation, if present.
    pub fn workflow(&self) -> Option<&str> {
        self.manifest.annotations.get(ANNOTATION_WORKFLOW).map(String::as_str)
    }

    /// Tenant annotation, if present.
    pub fn tenant(&self) -> Option<&str> {
        self.manifest.annotations.get(ANNOTATION_TENANT).map(String::as_str)
    }

    /// Artifact size in bytes (Wasm binary length or image size) — the
    /// quantity Fig. 2a compares (3.19 MB Wasm vs 76.9 MB image).
    pub fn size_bytes(&self) -> u64 {
        match &self.kind {
            BundleKind::WasmModule { binary } => binary.len() as u64,
            BundleKind::ContainerImage { image_size } => *image_size,
        }
    }

    /// Whether two bundles may share a Wasm VM under Roadrunner's trust
    /// rule: same workflow *and* same tenant (paper §3.1, "Only functions
    /// of the same workflow and tenant are instantiated in the same Wasm
    /// VM").
    pub fn trusts(&self, other: &FunctionBundle) -> bool {
        match (self.workflow(), other.workflow(), self.tenant(), other.tenant()) {
            (Some(w1), Some(w2), Some(t1), Some(t2)) => w1 == w2 && t1 == t2,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wasm_bundle_size_is_binary_length() {
        let b = FunctionBundle::wasm("f", vec![0; 3_190_000]);
        assert_eq!(b.size_bytes(), 3_190_000);
        assert_eq!(b.name(), "f");
    }

    #[test]
    fn container_bundle_size_is_image_size() {
        let b = FunctionBundle::container("f", 76_900_000);
        assert_eq!(b.size_bytes(), 76_900_000);
    }

    #[test]
    fn trust_requires_same_workflow_and_tenant() {
        let mk = |wf: &str, tenant: &str| {
            FunctionBundle::wasm("f", vec![]).with_workflow(wf).with_tenant(tenant)
        };
        assert!(mk("wf1", "acme").trusts(&mk("wf1", "acme")));
        assert!(!mk("wf1", "acme").trusts(&mk("wf2", "acme")));
        assert!(!mk("wf1", "acme").trusts(&mk("wf1", "other")));
    }

    #[test]
    fn unannotated_bundles_are_never_trusted() {
        let plain = FunctionBundle::wasm("f", vec![]);
        let annotated = FunctionBundle::wasm("g", vec![]).with_workflow("wf").with_tenant("t");
        assert!(!plain.trusts(&annotated));
        assert!(!annotated.trusts(&plain));
        assert!(!plain.trusts(&plain));
    }

    #[test]
    fn manifest_mutation() {
        let mut b = FunctionBundle::wasm("f", vec![]).with_memory_limit_pages(64);
        assert_eq!(b.manifest().memory_limit_pages, Some(64));
        b.manifest_mut().env.push(("K".into(), "V".into()));
        assert_eq!(b.manifest().env.len(), 1);
    }
}
