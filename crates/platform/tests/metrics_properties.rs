//! Property-based tests for the streaming percentile digest: it must
//! agree exactly with the nearest-rank path while small, and stay
//! internally consistent (bounded, monotone) at any size.

use proptest::prelude::*;
use roadrunner_platform::{percentiles, StreamingPercentiles, STREAMING_EXACT_MAX};

proptest! {
    /// Below the exact-buffer threshold the streaming digest IS the
    /// nearest-rank digest, observation for observation.
    #[test]
    fn streaming_digest_matches_nearest_rank_on_small_n(
        values in proptest::collection::vec(0u64..1_000_000, 1..=STREAMING_EXACT_MAX),
    ) {
        let mut digest = StreamingPercentiles::new();
        for &v in &values {
            digest.record(v);
        }
        let stream = digest.summary().unwrap();
        let exact = percentiles(&values).unwrap();
        prop_assert_eq!(stream, exact);
    }

    /// Past the threshold the P² estimates stay within the observed
    /// range, keep p50 ≤ p95 ≤ p99, and report exact count/min/max/mean.
    #[test]
    fn streaming_digest_stays_consistent_on_large_n(
        values in proptest::collection::vec(0u64..100_000, 100..600),
    ) {
        let mut digest = StreamingPercentiles::new();
        for &v in &values {
            digest.record(v);
        }
        let s = digest.summary().unwrap();
        let exact = percentiles(&values).unwrap();
        prop_assert_eq!(s.count, exact.count);
        prop_assert_eq!(s.min_ns, exact.min_ns);
        prop_assert_eq!(s.max_ns, exact.max_ns);
        prop_assert!((s.mean_ns - exact.mean_ns).abs() < 1e-6);
        prop_assert!(s.min_ns <= s.p50_ns);
        prop_assert!(s.p50_ns <= s.p95_ns);
        prop_assert!(s.p95_ns <= s.p99_ns);
        prop_assert!(s.p99_ns <= s.max_ns);
        // The p50 estimate must land inside the exact interquartile
        // hull — a loose but distribution-free agreement bound.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let lo = sorted[(n / 5).min(n - 1)];
        let hi = sorted[(n * 4 / 5).min(n - 1)];
        prop_assert!(
            (lo..=hi).contains(&s.p50_ns),
            "p50 {} outside [{}, {}]",
            s.p50_ns,
            lo,
            hi
        );
    }
}
