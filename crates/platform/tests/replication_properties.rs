//! Property-based tests for multi-seed replication: [`replicate`] and
//! [`ReplicatedStat`] must be permutation-invariant in seed order, the
//! confidence bounds must bracket the mean, and a single-seed
//! replication must degenerate exactly to the one run's digest.

use proptest::prelude::*;
use roadrunner_platform::{percentiles, replicate, PercentileSummary, ReplicatedStat};

/// Splitmix-style shuffler so permutations derive deterministically
/// from the proptest-provided seed.
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let j = ((z ^ (z >> 31)) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Per-seed digests from arbitrary non-empty latency vectors.
fn digests(latencies: &[Vec<u64>]) -> Vec<PercentileSummary> {
    latencies.iter().map(|obs| percentiles(obs).expect("non-empty")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replication is invariant under any permutation of the seed
    /// replicas.
    #[test]
    fn replicate_is_permutation_invariant(
        runs in proptest::collection::vec(
            proptest::collection::vec(1u64..1_000_000, 1..12), 1..10),
        shuffle_seed in any::<u64>(),
    ) {
        let ordered = digests(&runs);
        let permuted = shuffled(&ordered, shuffle_seed);
        let a = replicate(&ordered).expect("non-empty");
        let b = replicate(&permuted).expect("non-empty");
        prop_assert_eq!(a, b);
    }

    /// Every replicated statistic's CI brackets its across-seed mean,
    /// and min/max bracket the CI.
    #[test]
    fn ci_bounds_bracket_the_mean(
        runs in proptest::collection::vec(
            proptest::collection::vec(1u64..1_000_000, 1..12), 1..10),
    ) {
        let rep = replicate(&digests(&runs)).expect("non-empty");
        for stat in [rep.mean_ns, rep.p50_ns, rep.p95_ns, rep.p99_ns, rep.max_ns] {
            prop_assert!(stat.min <= stat.ci_lo);
            prop_assert!(stat.ci_lo <= stat.mean && stat.mean <= stat.ci_hi,
                "CI [{}, {}] must bracket mean {}", stat.ci_lo, stat.ci_hi, stat.mean);
            prop_assert!(stat.ci_hi <= stat.max);
        }
        prop_assert_eq!(rep.seeds, runs.len());
        prop_assert_eq!(rep.count, runs.iter().map(Vec::len).sum::<usize>());
    }

    /// One seed: the replication collapses to exactly the single run's
    /// digest — mean, bounds and CI all equal the observed value.
    #[test]
    fn single_seed_degenerates_to_the_run_digest(
        obs in proptest::collection::vec(1u64..1_000_000, 1..32),
    ) {
        let digest = percentiles(&obs).expect("non-empty");
        let rep = replicate(&[digest]).expect("non-empty");
        prop_assert_eq!(rep.seeds, 1);
        prop_assert_eq!(rep.count, digest.count);
        for (stat, want) in [
            (rep.mean_ns, digest.mean_ns),
            (rep.p50_ns, digest.p50_ns as f64),
            (rep.p95_ns, digest.p95_ns as f64),
            (rep.p99_ns, digest.p99_ns as f64),
            (rep.max_ns, digest.max_ns as f64),
        ] {
            prop_assert_eq!(stat.mean, want);
            prop_assert_eq!(stat.min, want);
            prop_assert_eq!(stat.max, want);
            prop_assert_eq!(stat.ci_lo, want);
            prop_assert_eq!(stat.ci_hi, want);
        }
    }

    /// Raw-value replication sorts by total order, so NaN-free inputs
    /// in any order produce identical stats.
    #[test]
    fn replicated_stat_values_are_order_invariant(
        values in proptest::collection::vec(0u32..1_000_000, 1..40),
        shuffle_seed in any::<u64>(),
    ) {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let a = ReplicatedStat::from_values(&floats).expect("non-empty");
        let b = ReplicatedStat::from_values(&shuffled(&floats, shuffle_seed)).expect("non-empty");
        prop_assert_eq!(a, b);
        prop_assert!(a.ci_lo <= a.mean && a.mean <= a.ci_hi);
    }
}
