//! Property-based tests for the load-generation engine: closed-loop
//! concurrency must stay bounded by the user count, arrivals must be
//! gated on completions, and the open-loop engine must keep its FIFO
//! admission discipline.

use bytes::Bytes;
use proptest::prelude::*;
use roadrunner_platform::{
    AdmissionConfig, ArrivalProcess, ClosedLoop, DataPlane, InstanceOutcome, LocalityFirst, OpenLoop,
    PlatformError, TransferTiming, WorkflowSpec,
};
use roadrunner_vkernel::{Nanos, SchedResources, VirtualClock};

/// A pass-through plane with fixed per-edge phase costs.
struct FixedPlane {
    clock: VirtualClock,
    edge_ns: Nanos,
}

impl DataPlane for FixedPlane {
    fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
        self.clock.advance(self.edge_ns);
        Ok(p)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        p: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let timing =
            TransferTiming { prepare_ns: 0, transfer_ns: self.edge_ns, consume_ns: 0 };
        let received = self.transfer(from, to, p)?;
        Ok((received, Some(timing)))
    }
}

fn pipeline() -> WorkflowSpec {
    WorkflowSpec::sequence("pipe", "t", ["a".to_owned(), "b".to_owned(), "c".to_owned()])
}

/// Peak number of instances whose `[release, finish)` intervals overlap.
fn peak_concurrency(outcomes: &[InstanceOutcome]) -> usize {
    let mut points: Vec<(Nanos, i64)> = Vec::new();
    for o in outcomes {
        points.push((o.release_ns, 1));
        points.push((o.finish_ns, -1));
    }
    // Ends sort before starts at the same instant: a completion frees
    // the slot the next arrival takes.
    points.sort_by_key(|&(t, delta)| (t, delta));
    let mut level = 0i64;
    let mut peak = 0i64;
    for (_, delta) in points {
        level += delta;
        peak = peak.max(level);
    }
    peak as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A closed loop never holds more instances in flight than it has
    /// users, under any think time, ramp, capacity, or edge cost.
    #[test]
    fn closed_loop_concurrency_never_exceeds_users(
        users in 1usize..6,
        rounds in 1usize..5,
        think_ns in 0u64..3_000,
        ramp_ns in 0u64..2_000,
        edge_ns in 1u64..5_000,
        nodes in 1usize..4,
        cores in 1u32..4,
    ) {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane { clock: clock.clone(), edge_ns };
        let load = ClosedLoop {
            spec: pipeline(),
            payload: Bytes::new(),
            users,
            think_ns,
            ramp_ns,
            instances: users * rounds,
            admission: AdmissionConfig::warm(),
        };
        let mut res = SchedResources::new(nodes, cores);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        prop_assert_eq!(run.outcomes.len(), users * rounds);
        prop_assert!(
            peak_concurrency(&run.outcomes) <= users,
            "peak concurrency exceeded {} users",
            users
        );
    }

    /// Every closed-loop arrival after a user's first is gated on that
    /// user's previous completion: release k = finish k-1 + think.
    #[test]
    fn closed_loop_arrivals_are_gated_on_completions(
        users in 1usize..5,
        rounds in 2usize..5,
        think_ns in 0u64..2_500,
        ramp_ns in 0u64..1_500,
        edge_ns in 1u64..4_000,
    ) {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane { clock: clock.clone(), edge_ns };
        let load = ClosedLoop {
            spec: pipeline(),
            payload: Bytes::new(),
            users,
            think_ns,
            ramp_ns,
            instances: users * rounds,
            admission: AdmissionConfig::warm(),
        };
        let mut res = SchedResources::new(2, 2);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        prop_assert_eq!(run.outcomes.len(), users * rounds);
        for user in 0..users {
            // The total bound is global, so a fast user may take more
            // rounds than a slow one — but every user issues at least
            // its seeded first request, and every subsequent arrival is
            // gated on that user's own previous completion.
            let mine: Vec<&InstanceOutcome> =
                run.outcomes.iter().filter(|o| o.user == user).collect();
            prop_assert!(!mine.is_empty());
            prop_assert_eq!(mine[0].release_ns, user as Nanos * ramp_ns);
            for pair in mine.windows(2) {
                prop_assert_eq!(
                    pair[1].release_ns,
                    pair[0].finish_ns + think_ns,
                    "user {}'s arrival must be gated on its completion",
                    user
                );
            }
        }
    }

    /// Open-loop outcomes keep admission order and respect releases:
    /// instance k is outcome k, nothing finishes before it was released,
    /// and sojourns are at least the uncontended service time.
    #[test]
    fn open_loop_keeps_fifo_admission(
        instances in 1usize..20,
        interval_ns in 1u64..4_000,
        edge_ns in 1u64..3_000,
    ) {
        let clock = VirtualClock::new();
        let mut plane = FixedPlane { clock: clock.clone(), edge_ns };
        let load = OpenLoop {
            spec: pipeline(),
            payload: Bytes::new(),
            arrivals: ArrivalProcess::Uniform { interval_ns },
            instances,
            admission: AdmissionConfig::warm(),
        };
        let mut res = SchedResources::new(2, 2);
        let mut policy = LocalityFirst::new();
        let run = load.run(&mut plane, &clock, &mut res, &mut policy).unwrap();
        prop_assert_eq!(run.outcomes.len(), instances);
        for (k, o) in run.outcomes.iter().enumerate() {
            prop_assert_eq!(o.instance, k);
            prop_assert_eq!(o.release_ns, k as Nanos * interval_ns);
            prop_assert!(o.finish_ns >= o.release_ns);
            // Two serial edges of `edge_ns` each are the floor.
            prop_assert!(o.sojourn_ns >= 2 * edge_ns);
        }
    }
}
