//! Property-based tests for warm-pool admission: instance-lifecycle
//! conservation, run determinism, and the policy identities the pool
//! model promises (`KeepAlive::None` ≡ `FixedTtl { ttl_ns: 0 }`;
//! all-warm admission ignores any attached pool config).

use bytes::Bytes;
use proptest::prelude::*;
use roadrunner_platform::{
    AdmissionConfig, ClosedLoop, DataPlane, KeepAlive, LoadRun, LocalityFirst, PlatformError,
    TransferTiming, WarmPoolConfig, WorkflowSpec,
};
use roadrunner_vkernel::{Nanos, SchedResources, VirtualClock};

/// A pass-through plane with fixed per-edge phase costs.
struct FixedPlane {
    clock: VirtualClock,
    edge_ns: Nanos,
}

impl DataPlane for FixedPlane {
    fn transfer(&mut self, _: &str, _: &str, p: Bytes) -> Result<Bytes, PlatformError> {
        self.clock.advance(self.edge_ns);
        Ok(p)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        p: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let timing =
            TransferTiming { prepare_ns: 0, transfer_ns: self.edge_ns, consume_ns: 0 };
        let received = self.transfer(from, to, p)?;
        Ok((received, Some(timing)))
    }
}

const FUNCTIONS: usize = 3;

fn pipeline() -> WorkflowSpec {
    WorkflowSpec::sequence("pipe", "t", ["a".to_owned(), "b".to_owned(), "c".to_owned()])
}

/// Drives one closed loop to completion under `admission`.
#[allow(clippy::too_many_arguments)]
fn run_closed(
    admission: AdmissionConfig,
    users: usize,
    rounds: usize,
    think_ns: Nanos,
    edge_ns: Nanos,
    nodes: usize,
    cores: u32,
) -> LoadRun {
    let clock = VirtualClock::new();
    let mut plane = FixedPlane { clock: clock.clone(), edge_ns };
    let load = ClosedLoop {
        spec: pipeline(),
        payload: Bytes::new(),
        users,
        think_ns,
        ramp_ns: edge_ns / 2,
        instances: users * rounds,
        admission,
    };
    let mut res = SchedResources::new(nodes, cores);
    let mut policy = LocalityFirst::new();
    load.run(&mut plane, &clock, &mut res, &mut policy).expect("closed loop runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every function admission is either a hit or a miss, the run's
    /// aggregate pool counters agree with the per-instance tallies, and
    /// idle instances are conserved: everything returned or pre-warmed
    /// is eventually reused, evicted, or still warm at the end.
    #[test]
    fn pool_lifecycle_is_conserved(
        users in 1usize..5,
        rounds in 1usize..5,
        think_ns in 0u64..40_000,
        edge_ns in 1u64..5_000,
        cold_ns in 1u64..100_000,
        restore in (any::<bool>(), 1u64..10_000).prop_map(|(s, v)| s.then_some(v)),
        ttl_ns in 0u64..80_000,
        cap in 1usize..5,
        nodes in 1usize..4,
    ) {
        let cfg = WarmPoolConfig {
            restore_ns: restore,
            keep_alive: KeepAlive::FixedTtl { ttl_ns },
            max_idle_per_slot: cap,
        };
        let run = run_closed(
            AdmissionConfig::pooled(cold_ns, cfg), users, rounds, think_ns, edge_ns, nodes, 2,
        );
        let pool = run.pool.expect("pooled admission reports stats");

        let hits: u64 = run.outcomes.iter().map(|o| u64::from(o.pool_hits)).sum();
        let misses: u64 = run.outcomes.iter().map(|o| u64::from(o.pool_misses)).sum();
        prop_assert_eq!(pool.hits, hits);
        prop_assert_eq!(pool.misses, misses);
        prop_assert_eq!(
            hits + misses,
            (FUNCTIONS * run.outcomes.len()) as u64,
            "every function admission is a hit or a miss"
        );
        prop_assert!(pool.restores <= pool.misses, "restores are a kind of miss");
        prop_assert_eq!(
            pool.returns + pool.prewarms,
            pool.hits + pool.evictions + pool.warm_at_end,
            "idle instances are conserved: created = reused + evicted + remaining"
        );
        // A hit admits for free; only misses can charge cold-start time.
        for o in &run.outcomes {
            if o.pool_misses == 0 {
                prop_assert_eq!(o.cold_start_ns, 0, "all-hit instances admit for free");
            }
        }
    }

    /// Replaying the same pooled configuration reproduces the run
    /// exactly — outcome-for-outcome and counter-for-counter.
    #[test]
    fn pooled_runs_are_deterministic(
        users in 1usize..5,
        rounds in 1usize..4,
        think_ns in 0u64..30_000,
        edge_ns in 1u64..4_000,
        cold_ns in 1u64..80_000,
        ttl_ns in 0u64..60_000,
    ) {
        let cfg = WarmPoolConfig {
            restore_ns: Some(cold_ns / 10 + 1),
            keep_alive: KeepAlive::Hybrid { min_ttl_ns: 1, max_ttl_ns: ttl_ns.max(1) },
            ..WarmPoolConfig::default()
        };
        let admission = AdmissionConfig::pooled(cold_ns, cfg);
        let a = run_closed(admission.clone(), users, rounds, think_ns, edge_ns, 2, 2);
        let b = run_closed(admission, users, rounds, think_ns, edge_ns, 2, 2);
        prop_assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
        prop_assert_eq!(a.pool, b.pool);
        prop_assert_eq!(a.horizon_ns, b.horizon_ns);
    }

    /// `KeepAlive::None` is the no-pool baseline *expressed inside the
    /// pool model*: it must behave field-for-field like a fixed TTL of
    /// zero — same outcomes, same pool counters.
    #[test]
    fn keepalive_none_is_zero_ttl_field_for_field(
        users in 1usize..5,
        rounds in 1usize..4,
        think_ns in 0u64..30_000,
        edge_ns in 1u64..4_000,
        cold_ns in 1u64..80_000,
        restore in (any::<bool>(), 1u64..8_000).prop_map(|(s, v)| s.then_some(v)),
        nodes in 1usize..4,
    ) {
        let pool_of = |keep_alive| WarmPoolConfig {
            restore_ns: restore,
            keep_alive,
            ..WarmPoolConfig::default()
        };
        let none = run_closed(
            AdmissionConfig::pooled(cold_ns, pool_of(KeepAlive::None)),
            users, rounds, think_ns, edge_ns, nodes, 2,
        );
        let zero = run_closed(
            AdmissionConfig::pooled(cold_ns, pool_of(KeepAlive::FixedTtl { ttl_ns: 0 })),
            users, rounds, think_ns, edge_ns, nodes, 2,
        );
        prop_assert_eq!(format!("{:?}", none.outcomes), format!("{:?}", zero.outcomes));
        prop_assert_eq!(none.pool, zero.pool);
        let stats = none.pool.expect("pooled run");
        prop_assert_eq!(stats.hits, 0, "TTL 0 never serves warm");
    }

    /// All-warm admission ignores any attached pool config: with no
    /// cold-start cost there is nothing to pool, and the run must be
    /// identical to the plain `AdmissionConfig::warm()` run.
    #[test]
    fn warm_admission_ignores_pool_config(
        users in 1usize..5,
        rounds in 1usize..4,
        think_ns in 0u64..30_000,
        edge_ns in 1u64..4_000,
    ) {
        let plain = run_closed(
            AdmissionConfig::warm(), users, rounds, think_ns, edge_ns, 2, 2,
        );
        let with_pool = run_closed(
            AdmissionConfig { cold_start_ns: None, pool: Some(WarmPoolConfig::default()) },
            users, rounds, think_ns, edge_ns, 2, 2,
        );
        prop_assert_eq!(
            format!("{:?}", plain.outcomes),
            format!("{:?}", with_pool.outcomes)
        );
        prop_assert!(with_pool.pool.is_none(), "all-warm runs report no pool stats");
        for o in &plain.outcomes {
            prop_assert_eq!(o.cold_start_ns, 0);
            prop_assert_eq!(o.pool_hits, 0);
            prop_assert_eq!(o.pool_misses, 0);
        }
    }
}
