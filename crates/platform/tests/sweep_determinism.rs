//! The archetype test of the parallel sweep engine: for arbitrary small
//! grids — random forward-DAG workflow shapes, payload sizes and fills,
//! placement policies, 1–4 arrival seeds — the parallel sweep's merged,
//! serialized results must be **byte-identical** to the serial loop's,
//! across worker counts 1, 2 and 4.
//!
//! Each grid point runs a real `loadgen` open-loop simulation against
//! its own deterministic data plane, clock, scheduler resources and
//! placement policy, all constructed inside the job — the same
//! isolation discipline the fig12/fig13 sweeps follow. Serialization
//! captures every outcome field (virtual times, assignments) plus the
//! run-level rates with exact f64 bit patterns, so any divergence —
//! reordering, cross-thread state bleed, nondeterministic float
//! accumulation — flips bytes.

use std::collections::HashSet;

use bytes::Bytes;
use proptest::prelude::*;
use roadrunner_platform::{
    sweep, AdmissionConfig, ArrivalProcess, DataPlane, LoadRun, LocalityFirst, OpenLoop, PackThenSpill,
    PlacementPolicy, PlatformError, RoundRobin, SpreadLoad, SweepGrid, SweepMode, SweepPoint,
    TransferTiming, WorkflowDag, WorkflowSpec,
};
use roadrunner_vkernel::{SchedResources, VirtualClock};

/// Splitmix-style generator so graph shapes derive deterministically
/// from the proptest-provided seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Builds a random *forward* DAG of `n` nodes (connected and acyclic by
/// construction), plus up to `extra` additional forward edges.
fn forward_dag(n: usize, extra: usize, seed: u64) -> WorkflowDag {
    let mut rng = Mix(seed);
    let mut dag = WorkflowDag::new();
    let name = |i: usize| format!("f{i}");
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    for j in 1..n {
        let i = rng.below(j as u64) as usize;
        dag.add_edge(name(i), name(j));
        present.insert((i, j));
    }
    for _ in 0..extra {
        let j = 1 + rng.below((n - 1) as u64) as usize;
        let i = rng.below(j as u64) as usize;
        if present.insert((i, j)) {
            dag.add_edge(name(i), name(j));
        }
    }
    dag
}

/// A deterministic plane whose per-edge costs depend on the endpoints
/// and the payload content, so distinct grid points produce distinct
/// virtual-time trajectories.
struct KeyedPlane {
    clock: VirtualClock,
}

impl KeyedPlane {
    fn key(from: &str, to: &str, payload: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(from.as_bytes());
        eat(to.as_bytes());
        eat(payload);
        h
    }
}

impl DataPlane for KeyedPlane {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, payload).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let key = Self::key(from, to, &payload);
        let timing = TransferTiming {
            prepare_ns: 100 + key % 400,
            transfer_ns: 1_000 + payload.len() as u64 + key % 1_000,
            consume_ns: 50 + key % 200,
        };
        self.clock.advance(timing.total_ns());
        Ok((payload, Some(timing)))
    }
}

const POLICIES: [&str; 4] = ["locality", "spread", "round_robin", "pack_spill"];

fn policy_of(name: &str) -> Box<dyn PlacementPolicy> {
    match name {
        "locality" => Box::new(LocalityFirst::new()),
        "spread" => Box::new(SpreadLoad::new()),
        "round_robin" => Box::new(RoundRobin::new()),
        _ => Box::new(PackThenSpill::new(5_000)),
    }
}

/// Serializes a run with exact bit patterns: any divergence between
/// serial and parallel execution flips bytes here.
fn serialize_run(point: &SweepPoint, run: &LoadRun) -> String {
    let outcomes: Vec<String> = run
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{}:{}:{}:{}:{}:{}:{:?}",
                o.instance, o.user, o.release_ns, o.finish_ns, o.sojourn_ns, o.cold_start_ns,
                o.assignment,
            )
        })
        .collect();
    format!(
        "[{} {} {} {} seed={}] horizon={} offered={:016x} cpu={:016x} link={:016x} {}",
        point.index,
        point.policy,
        point.payload_bytes,
        point.rate,
        point.seed,
        run.horizon_ns,
        run.offered_rps.to_bits(),
        run.cpu_utilization.to_bits(),
        run.link_utilization.to_bits(),
        outcomes.join(";"),
    )
}

/// One grid point's simulation, fully self-contained.
fn run_point(point: &SweepPoint, dag_seed: u64, fill: u8) -> String {
    let nodes = 3 + (dag_seed % 3) as usize;
    let extra = (dag_seed % 4) as usize;
    let dag = forward_dag(nodes, extra, dag_seed);
    let spec = WorkflowSpec::from_dag("sweep-prop", "t", dag);
    let clock = VirtualClock::new();
    let mut plane = KeyedPlane { clock: clock.clone() };
    let mut resources = SchedResources::new(3, 2);
    let mut policy = policy_of(&point.policy);
    let load = OpenLoop {
        spec,
        payload: Bytes::from(vec![fill; point.payload_bytes]),
        arrivals: ArrivalProcess::Poisson {
            mean_interval_ns: (2_000.0 * point.rate).round() as u64,
            seed: point.seed,
        },
        instances: 5,
        admission: AdmissionConfig::warm(),
    };
    let run = load.run(&mut plane, &clock, &mut resources, policy.as_mut()).expect("run");
    serialize_run(point, &run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel ≡ serial, byte for byte, for arbitrary small grids and
    /// worker counts 1/2/4.
    #[test]
    fn parallel_sweep_is_byte_identical_to_serial(
        dag_seed in any::<u64>(),
        fill in any::<u8>(),
        rate_picks in proptest::collection::vec(1u64..=8, 1..=2),
        payload_picks in proptest::collection::vec(6u32..=12, 1..=2),
        policy_picks in proptest::collection::vec(0usize..POLICIES.len(), 1..=2),
        seeds in proptest::collection::vec(any::<u64>(), 1..=4),
    ) {
        let grid = SweepGrid {
            rates: rate_picks.iter().map(|&r| r as f64 / 2.0).collect(),
            payload_bytes: payload_picks.iter().map(|&p| 1usize << p).collect(),
            policies: policy_picks.iter().map(|&i| POLICIES[i].to_owned()).collect(),
            seeds,
        };
        let serial = sweep(&grid, SweepMode::Serial, |p| run_point(p, dag_seed, fill));
        prop_assert_eq!(serial.len(), grid.len());
        for workers in [1usize, 2, 4] {
            let parallel =
                sweep(&grid, SweepMode::Parallel { workers }, |p| run_point(p, dag_seed, fill));
            prop_assert_eq!(&serial, &parallel, "workers={}", workers);
        }
        // The merged strings carry their grid index: verify order.
        for (i, s) in serial.iter().enumerate() {
            prop_assert!(s.starts_with(&format!("[{i} ")), "slot {} holds {}", i, s);
        }
    }
}

#[test]
fn empty_axes_yield_empty_results_under_every_mode() {
    for mode in [SweepMode::Serial, SweepMode::Parallel { workers: 4 }] {
        let grid = SweepGrid {
            rates: vec![1.0],
            payload_bytes: vec![64],
            policies: vec!["locality".to_owned()],
            seeds: Vec::new(),
        };
        assert!(sweep(&grid, mode, |p| run_point(p, 7, 0xAB)).is_empty());
    }
}
