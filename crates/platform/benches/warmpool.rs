//! Micro-benchmarks for warm-pool admission's hot primitives.
//!
//! Pooled admission sits on the load engine's per-arrival path: every
//! instance pays one `admit` (LIFO slot scan + lazy eviction) and one
//! `complete` (return + cap enforcement), and pre-warming pays
//! `ensure_target` sweeps across every function's slots. These track
//! the cost of that bookkeeping so a pool-model regression shows up
//! here before it shows up in `fig15_coldstart` wall time.
//!
//! Run: `cargo bench -p roadrunner-platform`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use roadrunner_platform::{KeepAlive, WarmPool, WarmPoolConfig};
use roadrunner_vkernel::sched::SchedResources;

const OPS: u64 = 10_000;
const NODES: usize = 8;
const FUNCTIONS: usize = 4;

fn pool_config(keep_alive: KeepAlive) -> WarmPoolConfig {
    WarmPoolConfig { restore_ns: Some(50), keep_alive, ..WarmPoolConfig::default() }
}

/// Steady-state hit/return cycling: every admit finds a warm instance,
/// every complete returns it — the fast path a well-staffed pool serves.
fn bench_admit_hit_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("warmpool_admit");
    group.throughput(Throughput::Elements(OPS));
    for keep_alive in
        [KeepAlive::FixedTtl { ttl_ns: u64::MAX }, KeepAlive::Hybrid { min_ttl_ns: 1, max_ttl_ns: u64::MAX }]
    {
        let label = match keep_alive {
            KeepAlive::Hybrid { .. } => "hit_cycle_hybrid",
            _ => "hit_cycle_ttl",
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut pool = WarmPool::new(1_000, pool_config(keep_alive), FUNCTIONS);
                let mut res = SchedResources::mesh(&[4; NODES]);
                let assignment: Vec<usize> = (0..FUNCTIONS).map(|f| f % NODES).collect();
                // Seed each slot once, then cycle hit → return.
                pool.complete(0, &assignment);
                let mut hits = 0u64;
                for i in 0..OPS {
                    let now = 10 + i * 7;
                    let admitted = pool.admit(now, &assignment, &mut res);
                    hits += u64::from(admitted.hits);
                    pool.complete(now + 5, &assignment);
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

/// Miss-heavy churn with a short TTL: every admission expires the slot,
/// instantiates on the CPU timeline, and the return is evicted before
/// the next arrival — the pool's worst-case bookkeeping path.
fn bench_eviction_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("warmpool_evict");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("miss_evict_churn", |b| {
        b.iter(|| {
            let keep_alive = KeepAlive::FixedTtl { ttl_ns: 3 };
            let mut pool = WarmPool::new(1_000, pool_config(keep_alive), FUNCTIONS);
            let mut res = SchedResources::mesh(&[4; NODES]);
            let assignment: Vec<usize> = (0..FUNCTIONS).map(|f| f % NODES).collect();
            for i in 0..OPS {
                // Arrivals spaced past the TTL: everything idles out.
                let now = i * 1_000;
                black_box(pool.admit(now, &assignment, &mut res));
                pool.complete(now + 5, &assignment);
            }
            pool.stats().evictions
        })
    });
    group.finish();
}

/// Background staffing sweeps: `ensure_target` walks every function's
/// slots, expires the dead, and tops the pool back up round-robin.
fn bench_ensure_target(c: &mut Criterion) {
    let mut group = c.benchmark_group("warmpool_prewarm");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("ensure_target_sweep", |b| {
        b.iter(|| {
            let keep_alive = KeepAlive::FixedTtl { ttl_ns: 500 };
            let mut pool = WarmPool::new(1_000, pool_config(keep_alive), FUNCTIONS);
            let mut res = SchedResources::mesh(&[4; NODES]);
            for i in 0..OPS {
                // TTL 500 with 1 µs steps: each sweep evicts the prior
                // round's staffing and rebuilds it.
                pool.ensure_target(i * 1_000, 4, 1, &mut res);
            }
            pool.stats().prewarms
        })
    });
    group.finish();
}

criterion_group!(benches, bench_admit_hit_cycle, bench_eviction_churn, bench_ensure_target);
criterion_main!(benches);
