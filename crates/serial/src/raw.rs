//! Zero-copy raw views — the serialization-free representation.
//!
//! Roadrunner never converts data to an interchange format: it locates the
//! flat in-memory representation inside the source function's linear memory
//! (`locate_memory_region`) and ships those bytes untouched. [`RawView`]
//! models that representation on the host side: a cheaply cloneable,
//! sliceable window over [`Bytes`] with an integrity checksum used by the
//! test suite to prove end-to-end fidelity of every transfer mode.

use bytes::Bytes;

/// A zero-copy window over a flat byte region.
///
/// Cloning and slicing a `RawView` never copies payload bytes — exactly the
/// property Roadrunner's virtual data hose relies on. The underlying
/// storage is reference-counted [`Bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawView {
    data: Bytes,
}

impl RawView {
    /// Wraps an existing byte buffer without copying.
    pub fn new(data: Bytes) -> Self {
        Self { data }
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self { data: Bytes::from_static(data) }
    }

    /// Length of the viewed region in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the viewed region is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the region as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Borrow the underlying shared buffer.
    pub fn bytes(&self) -> &Bytes {
        &self.data
    }

    /// Extracts the underlying shared buffer.
    pub fn into_bytes(self) -> Bytes {
        self.data
    }

    /// Returns a zero-copy sub-view of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, matching [`Bytes::slice`].
    pub fn slice(&self, range: std::ops::Range<usize>) -> RawView {
        RawView { data: self.data.slice(range) }
    }

    /// FNV-1a checksum of the region.
    ///
    /// Every integration test that pushes a payload through a transfer mode
    /// asserts the checksum is preserved, so "zero-copy" can never silently
    /// mean "zero data".
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.data)
    }
}

impl From<Vec<u8>> for RawView {
    fn from(v: Vec<u8>) -> Self {
        RawView::new(Bytes::from(v))
    }
}

impl From<Bytes> for RawView {
    fn from(b: Bytes) -> Self {
        RawView::new(b)
    }
}

impl AsRef<[u8]> for RawView {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// FNV-1a hash over a byte slice, used for payload integrity checks.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_storage() {
        let view = RawView::from(vec![1u8, 2, 3, 4, 5]);
        let sub = view.slice(1..4);
        assert_eq!(sub.as_slice(), &[2, 3, 4]);
        // Same backing allocation: the sub-view's pointer lives inside the
        // parent's range.
        let parent_range = view.as_slice().as_ptr() as usize
            ..view.as_slice().as_ptr() as usize + view.len();
        assert!(parent_range.contains(&(sub.as_slice().as_ptr() as usize)));
    }

    #[test]
    fn clone_does_not_copy() {
        let view = RawView::from(vec![7u8; 1024]);
        let clone = view.clone();
        assert_eq!(view.as_slice().as_ptr(), clone.as_slice().as_ptr());
    }

    #[test]
    fn checksum_detects_corruption() {
        let a = RawView::from(vec![0u8; 64]);
        let mut corrupted = a.as_slice().to_vec();
        corrupted[10] ^= 0x01;
        let b = RawView::from(corrupted);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn checksum_is_stable() {
        let view = RawView::from_static(b"roadrunner");
        assert_eq!(view.checksum(), view.clone().checksum());
    }

    #[test]
    fn empty_view() {
        let view = RawView::from(Vec::new());
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
        assert_eq!(view.checksum(), fnv1a(b""));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        RawView::from(vec![1u8, 2]).slice(0..3);
    }
}
