//! JSON-like text codec.
//!
//! This is the serialization format the HTTP-based baselines pay for: a
//! human-readable rendering with string escaping, number formatting and
//! recursive descent parsing. Byte blobs — which JSON cannot carry — are
//! encoded as hex strings wrapped in `x'…'`, mirroring how real systems
//! base64 binary data into JSON (and paying a comparable expansion cost).

use crate::{DecodeError, Value};

/// Serializes `value` into its text form.
///
/// ```
/// # use roadrunner_serial::{text, Value};
/// let s = text::to_text(&Value::map([("n", Value::from(3i64))]));
/// assert_eq!(s, r#"{"n":3}"#);
/// ```
pub fn to_text(value: &Value) -> String {
    let mut out = String::with_capacity(value.heap_size() + value.node_count() * 2);
    write_value(&mut out, value);
    out
}

/// Parses a text document produced by [`to_text`].
///
/// # Errors
///
/// Returns [`DecodeError`] with the byte offset of the first syntax
/// problem: unterminated strings, bad escapes, malformed numbers,
/// trailing garbage, or non-UTF-8-representable content.
pub fn from_text(input: &str) -> Result<Value, DecodeError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(DecodeError::new(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Bytes(b) => {
            out.push_str("x'");
            for byte in b.iter() {
                out.push(hex_digit(byte >> 4));
                out.push(hex_digit(byte & 0xF));
            }
            out.push('\'');
        }
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("nan");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "inf" } else { "-inf" });
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fractional marker so the parser can tell floats from ints.
        out.push_str(&format!("{x:.1}"));
    } else if x.abs() >= 1e15 || (x != 0.0 && x.abs() < 1e-5) {
        // Rust's `Display` for floats never uses exponent notation; huge
        // magnitudes would print hundreds of digits and lose the float
        // marker. Use scientific notation instead.
        out.push_str(&format!("{x:e}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn hex_digit(n: u8) -> char {
    char::from_digit(n as u32, 16).expect("nibble is < 16")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
    match bytes.get(*pos) {
        None => Err(DecodeError::new(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'i') => parse_keyword(bytes, pos, "inf", Value::F64(f64::INFINITY)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'x') => parse_hex_bytes(bytes, pos),
        Some(b'[') => parse_list(bytes, pos),
        Some(b'{') => parse_map(bytes, pos),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&other) => {
            Err(DecodeError::new(*pos, format!("unexpected byte 0x{other:02x}")))
        }
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, DecodeError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(DecodeError::new(*pos, format!("expected keyword `{word}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, DecodeError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let start = *pos;
        match bytes.get(*pos) {
            None => return Err(DecodeError::new(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| DecodeError::new(start, "truncated \\u escape"))?;
                        let hex_str = std::str::from_utf8(hex)
                            .map_err(|_| DecodeError::new(start, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex_str, 16)
                            .map_err(|_| DecodeError::new(start, "invalid \\u escape"))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| DecodeError::new(start, "invalid code point"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(DecodeError::new(start, "invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. Find its byte length from the
                // leading byte.
                let b = bytes[*pos];
                let len = utf8_len(b).ok_or_else(|| {
                    DecodeError::new(*pos, "invalid UTF-8 leading byte in string")
                })?;
                let slice = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| DecodeError::new(*pos, "truncated UTF-8 sequence"))?;
                let s = std::str::from_utf8(slice)
                    .map_err(|_| DecodeError::new(*pos, "invalid UTF-8 sequence"))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn utf8_len(leading: u8) -> Option<usize> {
    match leading {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

fn parse_hex_bytes(bytes: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
    if bytes.get(*pos + 1) != Some(&b'\'') {
        return Err(DecodeError::new(*pos, "expected x'…' byte literal"));
    }
    *pos += 2;
    let mut out = Vec::new();
    loop {
        match (bytes.get(*pos), bytes.get(*pos + 1)) {
            (Some(b'\''), _) => {
                *pos += 1;
                return Ok(Value::Bytes(out.into()));
            }
            (Some(&hi), Some(&lo)) => {
                let hi = hex_val(hi).ok_or_else(|| DecodeError::new(*pos, "bad hex digit"))?;
                let lo =
                    hex_val(lo).ok_or_else(|| DecodeError::new(*pos + 1, "bad hex digit"))?;
                out.push(hi << 4 | lo);
                *pos += 2;
            }
            _ => return Err(DecodeError::new(*pos, "unterminated byte literal")),
        }
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
        if bytes[*pos..].starts_with(b"inf") {
            *pos += 3;
            return Ok(Value::F64(f64::NEG_INFINITY));
        }
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let token = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| DecodeError::new(start, "non-ascii number"))?;
    if token.is_empty() || token == "-" {
        return Err(DecodeError::new(start, "empty number"));
    }
    if is_float {
        token
            .parse::<f64>()
            .map(Value::F64)
            .map_err(|_| DecodeError::new(start, format!("invalid float `{token}`")))
    } else {
        token
            .parse::<i64>()
            .map(Value::I64)
            .map_err(|_| DecodeError::new(start, format!("invalid integer `{token}`")))
    }
}

fn parse_list(bytes: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::List(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::List(items));
            }
            _ => return Err(DecodeError::new(*pos, "expected `,` or `]` in list")),
        }
    }
}

fn parse_map(bytes: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Map(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(DecodeError::new(*pos, "expected string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(DecodeError::new(*pos, "expected `:` after key"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            _ => return Err(DecodeError::new(*pos, "expected `,` or `}` in map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn roundtrip(v: &Value) {
        let s = to_text(v);
        let back = from_text(&s).unwrap_or_else(|e| panic!("decoding {s:?}: {e}"));
        assert_eq!(&back, v, "text was {s:?}");
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::I64(0));
        roundtrip(&Value::I64(i64::MIN));
        roundtrip(&Value::I64(i64::MAX));
        roundtrip(&Value::F64(1.5));
        roundtrip(&Value::F64(-0.25));
        roundtrip(&Value::F64(1e300));
    }

    #[test]
    fn whole_floats_stay_floats() {
        let v = Value::F64(3.0);
        let s = to_text(&v);
        assert_eq!(s, "3.0");
        assert_eq!(from_text(&s).unwrap(), v);
    }

    #[test]
    fn infinities_round_trip() {
        roundtrip(&Value::F64(f64::INFINITY));
        roundtrip(&Value::F64(f64::NEG_INFINITY));
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        roundtrip(&Value::from("hello"));
        roundtrip(&Value::from("quote \" backslash \\ newline \n tab \t"));
        roundtrip(&Value::from("unicode: héllo ☃ 𝕏"));
        roundtrip(&Value::from("\u{1}\u{2}control"));
        roundtrip(&Value::from(""));
    }

    #[test]
    fn bytes_round_trip() {
        roundtrip(&Value::Bytes(Bytes::from_static(b"")));
        roundtrip(&Value::Bytes(Bytes::from_static(b"\x00\x01\xFE\xFF")));
        roundtrip(&Value::Bytes(Bytes::from((0u8..=255).collect::<Vec<_>>())));
    }

    #[test]
    fn nested_structures_round_trip() {
        roundtrip(&Value::list([]));
        roundtrip(&Value::map::<&str, _>([]));
        roundtrip(&Value::map([
            ("name", Value::from("frame-001")),
            (
                "meta",
                Value::map([("w", Value::from(1920i64)), ("h", Value::from(1080i64))]),
            ),
            ("tags", Value::list([Value::from("edge"), Value::from("cloud")])),
            ("blob", Value::Bytes(Bytes::from_static(b"\x89PNG"))),
        ]));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = from_text(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(|l| l.at(1)).and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = from_text("null x").unwrap_err();
        assert!(err.reason().contains("trailing"));
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(from_text("\"abc").is_err());
    }

    #[test]
    fn bad_escape_rejected() {
        assert!(from_text(r#""\q""#).is_err());
    }

    #[test]
    fn malformed_list_rejected() {
        assert!(from_text("[1 2]").is_err());
        assert!(from_text("[1,").is_err());
    }

    #[test]
    fn malformed_map_rejected() {
        assert!(from_text("{1: 2}").is_err());
        assert!(from_text("{\"a\" 1}").is_err());
        assert!(from_text("{\"a\": 1").is_err());
    }

    #[test]
    fn bad_hex_literal_rejected() {
        assert!(from_text("x'0g'").is_err());
        assert!(from_text("x'0").is_err());
        assert!(from_text("xx").is_err());
    }

    #[test]
    fn error_offset_points_at_problem() {
        let err = from_text("[null, @]").unwrap_err();
        assert_eq!(err.offset(), 7);
    }

    #[test]
    fn deterministic_output() {
        let v = Value::map([("z", Value::from(1i64)), ("a", Value::from(2i64))]);
        assert_eq!(to_text(&v), to_text(&v));
        // Insertion order, not alphabetical.
        assert_eq!(to_text(&v), r#"{"z":1,"a":2}"#);
    }
}
