//! Synthetic workload payloads for the evaluation harness.
//!
//! The paper's experiments chain two I/O-bound functions `a` and `b` that
//! exchange "serialized strings" of 1 MB–500 MB (§6.1), plus the
//! motivating edge-cloud scenarios (ML-based image processing, traffic data
//! analytics). Each [`Payload`] carries both representations of the same
//! logical data:
//!
//! * [`Payload::value`] — the structured view that HTTP baselines must
//!   serialize and deserialize;
//! * [`Payload::flat`] — the flat in-memory representation (what actually
//!   lives in the source function's linear memory) that Roadrunner ships
//!   without serialization.
//!
//! Generation is deterministic from a seed so experiments are reproducible
//! without pulling `rand` into the library (a xorshift64* generator is
//! enough here).

use bytes::Bytes;

use crate::raw::fnv1a;
use crate::{RawView, Value};

/// Kind of synthetic payload, mirroring the paper's workload families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// A single large text record — the "serialized strings" of §6.1.
    Text,
    /// A batch of structured sensor records — traffic data analytics.
    SensorRecords,
    /// An opaque image frame — ML-based image processing.
    ImageFrame,
    /// Pre-flattened bytes of unknown provenance (a workflow edge's raw
    /// payload entering a baseline); see [`Payload::opaque`].
    Opaque,
}

impl std::fmt::Display for PayloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PayloadKind::Text => "text",
            PayloadKind::SensorRecords => "sensor-records",
            PayloadKind::ImageFrame => "image-frame",
            PayloadKind::Opaque => "opaque",
        };
        f.write_str(name)
    }
}

/// A synthetic workload payload with both structured and flat forms.
#[derive(Debug, Clone, PartialEq)]
pub struct Payload {
    kind: PayloadKind,
    value: Value,
    flat: Bytes,
    /// [`Value::node_count`] of `value`, derived once at construction.
    /// The codec cost models consume it on **every** transfer; for
    /// structured payloads the count is an O(records) tree walk, so
    /// caching it here takes that walk out of the per-transfer path.
    value_nodes: usize,
}

impl Payload {
    /// Generates a deterministic payload of roughly `size` bytes.
    ///
    /// The flat representation is exactly sized for [`PayloadKind::Text`]
    /// and [`PayloadKind::ImageFrame`]; [`PayloadKind::SensorRecords`]
    /// rounds to whole records.
    ///
    /// ```
    /// # use roadrunner_serial::payload::{Payload, PayloadKind};
    /// let p = Payload::synthetic(PayloadKind::Text, 7, 4096);
    /// assert_eq!(p.flat().len(), 4096);
    /// ```
    pub fn synthetic(kind: PayloadKind, seed: u64, size: usize) -> Self {
        match kind {
            PayloadKind::Text => Self::text(seed, size),
            PayloadKind::SensorRecords => Self::sensor_records(seed, size),
            PayloadKind::ImageFrame => Self::image_frame(seed, size),
            // Synthetic opaque data is indistinguishable from a frame.
            PayloadKind::Opaque => Payload { kind, ..Self::image_frame(seed, size) },
        }
    }

    fn text(seed: u64, size: usize) -> Self {
        // Printable ASCII so text-codec escaping stays cheap and byte
        // counts stay predictable; real payloads are JSON-ish strings.
        const ALPHABET: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,.;:-_";
        let mut rng = XorShift64::new(seed);
        let mut buf = Vec::with_capacity(size);
        while buf.len() < size {
            let word = rng.next();
            for i in 0..8 {
                if buf.len() == size {
                    break;
                }
                let idx = ((word >> (i * 8)) & 0xFF) as usize % ALPHABET.len();
                buf.push(ALPHABET[idx]);
            }
        }
        let s = String::from_utf8(buf).expect("alphabet is ASCII");
        let flat = Bytes::from(s.clone().into_bytes());
        Self::from_parts(PayloadKind::Text, Value::Str(s), flat)
    }

    /// Assembles a payload, deriving the cached structure count.
    fn from_parts(kind: PayloadKind, value: Value, flat: Bytes) -> Self {
        let value_nodes = value.node_count();
        Payload { kind, value, flat, value_nodes }
    }

    fn sensor_records(seed: u64, size: usize) -> Self {
        // Fixed-width packed record: id(u64) ts(u64) lane(u32) speed(f32)
        // flow(f32) pad(u32) = 32 bytes. The flat form is what a C/Rust
        // guest would hold in linear memory; the structured form is what a
        // JSON API would expose.
        const RECORD: usize = 32;
        let count = size.div_ceil(RECORD).max(1);
        let mut rng = XorShift64::new(seed);
        let mut flat = Vec::with_capacity(count * RECORD);
        let mut records = Vec::with_capacity(count);
        for id in 0..count as u64 {
            let ts = 1_700_000_000_000 + rng.next() % 86_400_000;
            let lane = (rng.next() % 8) as u32;
            let speed = (rng.next() % 130) as f32 + 0.5;
            let flow = (rng.next() % 2000) as f32;
            flat.extend_from_slice(&id.to_le_bytes());
            flat.extend_from_slice(&ts.to_le_bytes());
            flat.extend_from_slice(&lane.to_le_bytes());
            flat.extend_from_slice(&speed.to_le_bytes());
            flat.extend_from_slice(&flow.to_le_bytes());
            flat.extend_from_slice(&0u32.to_le_bytes());
            records.push(Value::map([
                ("id", Value::I64(id as i64)),
                ("ts", Value::I64(ts as i64)),
                ("lane", Value::I64(lane as i64)),
                ("speed", Value::F64(speed as f64)),
                ("flow", Value::F64(flow as f64)),
            ]));
        }
        Self::from_parts(PayloadKind::SensorRecords, Value::List(records), Bytes::from(flat))
    }

    fn image_frame(seed: u64, size: usize) -> Self {
        let mut rng = XorShift64::new(seed);
        let mut buf = Vec::with_capacity(size);
        while buf.len() + 8 <= size {
            buf.extend_from_slice(&rng.next().to_le_bytes());
        }
        while buf.len() < size {
            buf.push((rng.next() & 0xFF) as u8);
        }
        let flat = Bytes::from(buf);
        Self::from_parts(PayloadKind::ImageFrame, Value::Bytes(flat.clone()), flat)
    }

    /// Wraps pre-flattened bytes as an opaque payload: the structured
    /// form is a single [`Value::Bytes`] blob. This is how a workflow
    /// edge's raw bytes enter a baseline that must (de)serialize them.
    ///
    /// ```
    /// # use bytes::Bytes;
    /// # use roadrunner_serial::payload::Payload;
    /// let p = Payload::opaque(Bytes::from_static(b"\x01\x02"));
    /// assert_eq!(p.flat().len(), 2);
    /// ```
    pub fn opaque(flat: Bytes) -> Self {
        Self::from_parts(PayloadKind::Opaque, Value::Bytes(flat.clone()), flat)
    }

    /// Which workload family this payload belongs to.
    pub fn kind(&self) -> PayloadKind {
        self.kind
    }

    /// Structured view — what the HTTP baselines serialize.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Cached [`Value::node_count`] of [`value`](Self::value) — the
    /// structure-complexity input of the codec cost models, derived once
    /// at construction instead of re-walked on every transfer.
    pub fn value_nodes(&self) -> usize {
        self.value_nodes
    }

    /// Flat in-memory representation — what Roadrunner ships untouched.
    pub fn flat(&self) -> &Bytes {
        &self.flat
    }

    /// Zero-copy raw view over the flat representation.
    pub fn raw_view(&self) -> RawView {
        RawView::new(self.flat.clone())
    }

    /// Integrity checksum of the flat representation.
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.flat)
    }
}

/// xorshift64* PRNG — deterministic, dependency-free.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // Zero state would be a fixed point; displace it.
        Self { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1) }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{binary, text};

    #[test]
    fn text_payload_has_exact_size() {
        for size in [0usize, 1, 7, 8, 1024, 10_000] {
            let p = Payload::synthetic(PayloadKind::Text, 3, size);
            assert_eq!(p.flat().len(), size);
        }
    }

    #[test]
    fn image_payload_has_exact_size() {
        for size in [0usize, 1, 9, 4096] {
            let p = Payload::synthetic(PayloadKind::ImageFrame, 3, size);
            assert_eq!(p.flat().len(), size);
        }
    }

    #[test]
    fn sensor_records_round_to_whole_records() {
        let p = Payload::synthetic(PayloadKind::SensorRecords, 3, 100);
        assert_eq!(p.flat().len() % 32, 0);
        assert!(p.flat().len() >= 100);
        assert_eq!(p.value().as_list().unwrap().len(), p.flat().len() / 32);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Payload::synthetic(PayloadKind::Text, 42, 512);
        let b = Payload::synthetic(PayloadKind::Text, 42, 512);
        assert_eq!(a, b);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Payload::synthetic(PayloadKind::ImageFrame, 1, 512);
        let b = Payload::synthetic(PayloadKind::ImageFrame, 2, 512);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn structured_view_survives_both_codecs() {
        for kind in [PayloadKind::Text, PayloadKind::SensorRecords, PayloadKind::ImageFrame] {
            let p = Payload::synthetic(kind, 9, 2048);
            let via_text = text::from_text(&text::to_text(p.value())).unwrap();
            assert_eq!(&via_text, p.value(), "text codec, kind {kind}");
            let via_bin = binary::from_binary(&binary::to_binary(p.value())).unwrap();
            assert_eq!(&via_bin, p.value(), "binary codec, kind {kind}");
        }
    }

    #[test]
    fn text_flat_form_matches_string_value() {
        let p = Payload::synthetic(PayloadKind::Text, 5, 64);
        assert_eq!(p.value().as_str().unwrap().as_bytes(), p.flat().as_ref());
    }

    #[test]
    fn raw_view_shares_flat_storage() {
        let p = Payload::synthetic(PayloadKind::ImageFrame, 5, 128);
        assert_eq!(p.raw_view().as_slice().as_ptr(), p.flat().as_ref().as_ptr());
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(PayloadKind::Text.to_string(), "text");
        assert_eq!(PayloadKind::SensorRecords.to_string(), "sensor-records");
        assert_eq!(PayloadKind::ImageFrame.to_string(), "image-frame");
    }
}
