//! Structured, self-describing data model.

use bytes::Bytes;

/// A structured value exchanged between serverless functions.
///
/// This is the in-memory representation that HTTP-based baselines must
/// serialize before transfer and deserialize after receipt. Roadrunner
/// instead ships the flat [`crate::raw`] representation untouched.
///
/// Maps preserve insertion order so encoding is deterministic, which keeps
/// the benchmark harness reproducible run-to-run.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// The absent value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte blob (e.g. an image frame). Cheaply cloneable.
    Bytes(Bytes),
    /// An ordered sequence of values.
    List(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Builds a [`Value::List`] from an iterator of values.
    ///
    /// ```
    /// # use roadrunner_serial::Value;
    /// let v = Value::list([Value::from(1i64), Value::from(2i64)]);
    /// assert_eq!(v.as_list().unwrap().len(), 2);
    /// ```
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// Builds a [`Value::Map`] from `(key, value)` pairs, preserving order.
    ///
    /// ```
    /// # use roadrunner_serial::Value;
    /// let v = Value::map([("k", Value::Null)]);
    /// assert!(v.get("k").is_some());
    /// ```
    pub fn map<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(entries: I) -> Self {
        Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Returns the value under `key` if `self` is a map containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the element at `index` if `self` is a list that long.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::List(items) => items.get(index),
            _ => None,
        }
    }

    /// Returns the boolean if `self` is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if `self` is a [`Value::I64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the float if `self` is a [`Value::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the string slice if `self` is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte blob if `self` is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the items if `self` is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the entries if `self` is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Approximate in-memory size of the value tree in bytes.
    ///
    /// Used by the evaluation harness to size synthetic payloads and by the
    /// cost model to charge serialization work proportional to data volume.
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) | Value::I64(_) | Value::F64(_) => 8,
            Value::Str(s) => s.len() + 8,
            Value::Bytes(b) => b.len() + 8,
            Value::List(items) => 16 + items.iter().map(Value::heap_size).sum::<usize>(),
            Value::Map(entries) => {
                16 + entries.iter().map(|(k, v)| k.len() + 8 + v.heap_size()).sum::<usize>()
            }
        }
    }

    /// Number of nodes in the value tree (each scalar, list and map counts
    /// as one node). Serialization cost has a per-node component on top of
    /// the per-byte component.
    pub fn node_count(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::node_count).sum::<usize>(),
            Value::Map(entries) => 1 + entries.iter().map(|(_, v)| v.node_count()).sum::<usize>(),
            _ => 1,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::I64(n)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::I64(n as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value::Bytes(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(Bytes::from(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_finds_key() {
        let v = Value::map([("a", Value::from(1i64)), ("b", Value::from(2i64))]);
        assert_eq!(v.get("b").and_then(Value::as_i64), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn get_on_non_map_is_none() {
        assert_eq!(Value::from(3i64).get("a"), None);
    }

    #[test]
    fn list_index_access() {
        let v = Value::list([Value::from("x"), Value::from("y")]);
        assert_eq!(v.at(1).and_then(Value::as_str), Some("y"));
        assert_eq!(v.at(2), None);
        assert_eq!(Value::Null.at(0), None);
    }

    #[test]
    fn scalar_accessors_are_type_checked() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(true).as_i64(), None);
        assert_eq!(Value::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes().map(|b| b.len()), Some(2));
    }

    #[test]
    fn heap_size_scales_with_content() {
        let small = Value::from("ab");
        let big = Value::from("a".repeat(1000));
        assert!(big.heap_size() > small.heap_size());
        assert!(big.heap_size() >= 1000);
    }

    #[test]
    fn node_count_counts_all_nodes() {
        let v = Value::map([
            ("a", Value::list([Value::Null, Value::Null])),
            ("b", Value::from(1i64)),
        ]);
        // map + list + 2 nulls + int
        assert_eq!(v.node_count(), 5);
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }

    #[test]
    fn from_i32_widens() {
        assert_eq!(Value::from(7i32).as_i64(), Some(7));
    }
}
