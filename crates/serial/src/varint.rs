//! Unsigned LEB128-style variable-length integers for the binary codec.
//!
//! The binary codec frames every length with a varint so small payloads
//! stay compact while multi-hundred-megabyte blobs still fit. The encoding
//! is identical to unsigned LEB128 (7 value bits per byte, high bit is the
//! continuation flag).

use crate::DecodeError;

/// Maximum number of bytes a `u64` varint can occupy.
pub const MAX_LEN: usize = 10;

/// Appends the varint encoding of `value` to `out`.
///
/// ```
/// # use roadrunner_serial::varint;
/// let mut buf = Vec::new();
/// varint::write_u64(&mut buf, 300);
/// assert_eq!(buf, vec![0xAC, 0x02]);
/// ```
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint from `input` starting at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// Returns [`DecodeError`] if the input ends mid-varint or the encoding
/// exceeds [`MAX_LEN`] bytes (overlong / overflowing).
pub fn read_u64(input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    let start = *pos;
    loop {
        let byte = *input
            .get(*pos)
            .ok_or_else(|| DecodeError::new(*pos, "unexpected end of input in varint"))?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(DecodeError::new(start, "varint overflows u64"));
        }
        result |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if *pos - start >= MAX_LEN {
            return Err(DecodeError::new(start, "varint longer than 10 bytes"));
        }
    }
}

/// Number of bytes `value` occupies when varint-encoded.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    (64 - value.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_single_byte() {
        for v in [0u64, 1, 63, 127] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1, "value {v}");
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [0u64, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
            assert_eq!(encoded_len(v), buf.len());
        }
    }

    #[test]
    fn truncated_input_errors() {
        let buf = vec![0x80u8, 0x80];
        let mut pos = 0;
        let err = read_u64(&buf, &mut pos).unwrap_err();
        assert!(err.reason().contains("end of input"));
    }

    #[test]
    fn overlong_encoding_errors() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn overflow_detected() {
        // 10 bytes with a final byte carrying bits beyond u64.
        let buf = vec![0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_any_u64(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            prop_assert_eq!(buf.len(), encoded_len(v));
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn concatenated_varints_decode_in_sequence(vs in proptest::collection::vec(any::<u64>(), 0..20)) {
            let mut buf = Vec::new();
            for &v in &vs {
                write_u64(&mut buf, v);
            }
            let mut pos = 0;
            for &v in &vs {
                prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}
