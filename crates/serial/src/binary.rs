//! Compact tag-length-value binary codec.
//!
//! Each node is a 1-byte tag followed by a varint length (where needed) and
//! the raw content. Unlike the [`crate::text`] codec there is no escaping,
//! but the encoder still walks the whole value tree and copies every byte
//! into the output stream — this is the "serialization" cost the paper
//! measures for binary-framed baselines.

use bytes::Bytes;

use crate::{varint, DecodeError, Value};

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_I64: u8 = 0x03;
const TAG_F64: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_BYTES: u8 = 0x06;
const TAG_LIST: u8 = 0x07;
const TAG_MAP: u8 = 0x08;

/// Maximum nesting depth accepted by [`from_binary`], guarding the decoder
/// against stack exhaustion from hostile inputs.
pub const MAX_DEPTH: usize = 128;

/// Serializes `value` into the binary format.
///
/// ```
/// # use roadrunner_serial::{binary, Value};
/// let buf = binary::to_binary(&Value::from(5i64));
/// assert_eq!(binary::from_binary(&buf).unwrap(), Value::from(5i64));
/// ```
pub fn to_binary(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.heap_size() + value.node_count() * 2);
    write_value(&mut out, value);
    out
}

/// Parses a document produced by [`to_binary`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, unknown tags, invalid UTF-8 in
/// string nodes, nesting deeper than [`MAX_DEPTH`], or trailing bytes.
pub fn from_binary(input: &[u8]) -> Result<Value, DecodeError> {
    let mut pos = 0usize;
    let value = read_value(input, &mut pos, 0)?;
    if pos != input.len() {
        return Err(DecodeError::new(pos, "trailing bytes after document"));
    }
    Ok(value)
}

fn write_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::I64(n) => {
            out.push(TAG_I64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            varint::write_u64(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            varint::write_u64(out, items.len() as u64);
            for item in items {
                write_value(out, item);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            varint::write_u64(out, entries.len() as u64);
            for (k, v) in entries {
                varint::write_u64(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                write_value(out, v);
            }
        }
    }
}

fn read_value(input: &[u8], pos: &mut usize, depth: usize) -> Result<Value, DecodeError> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::new(*pos, "nesting deeper than MAX_DEPTH"));
    }
    let tag = *input
        .get(*pos)
        .ok_or_else(|| DecodeError::new(*pos, "unexpected end of input"))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_I64 => {
            let raw = take(input, pos, 8)?;
            Ok(Value::I64(i64::from_le_bytes(raw.try_into().expect("8 bytes"))))
        }
        TAG_F64 => {
            let raw = take(input, pos, 8)?;
            Ok(Value::F64(f64::from_le_bytes(raw.try_into().expect("8 bytes"))))
        }
        TAG_STR => {
            let len = read_len(input, pos)?;
            let raw = take(input, pos, len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| DecodeError::new(*pos - len, "invalid UTF-8 in string"))?;
            Ok(Value::Str(s.to_owned()))
        }
        TAG_BYTES => {
            let len = read_len(input, pos)?;
            let raw = take(input, pos, len)?;
            Ok(Value::Bytes(Bytes::copy_from_slice(raw)))
        }
        TAG_LIST => {
            let count = read_len(input, pos)?;
            // Each element needs at least one tag byte; bound allocation.
            if count > input.len() - *pos + 1 {
                return Err(DecodeError::new(*pos, "list count exceeds input size"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(read_value(input, pos, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        TAG_MAP => {
            let count = read_len(input, pos)?;
            if count > input.len() - *pos + 1 {
                return Err(DecodeError::new(*pos, "map count exceeds input size"));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let klen = read_len(input, pos)?;
                let kraw = take(input, pos, klen)?;
                let key = std::str::from_utf8(kraw)
                    .map_err(|_| DecodeError::new(*pos - klen, "invalid UTF-8 in key"))?
                    .to_owned();
                let value = read_value(input, pos, depth + 1)?;
                entries.push((key, value));
            }
            Ok(Value::Map(entries))
        }
        other => Err(DecodeError::new(*pos - 1, format!("unknown tag 0x{other:02x}"))),
    }
}

fn read_len(input: &[u8], pos: &mut usize) -> Result<usize, DecodeError> {
    let len = varint::read_u64(input, pos)?;
    usize::try_from(len).map_err(|_| DecodeError::new(*pos, "length exceeds usize"))
}

fn take<'a>(input: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], DecodeError> {
    let end = pos
        .checked_add(len)
        .ok_or_else(|| DecodeError::new(*pos, "length overflows"))?;
    let raw = input
        .get(*pos..end)
        .ok_or_else(|| DecodeError::new(*pos, "unexpected end of input"))?;
    *pos = end;
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: &Value) {
        let buf = to_binary(v);
        let back = from_binary(&buf).expect("decodes");
        match (v, &back) {
            // NaN != NaN; compare bit patterns for floats.
            (Value::F64(a), Value::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            _ => assert_eq!(&back, v),
        }
    }

    #[test]
    fn all_scalar_kinds_round_trip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::I64(i64::MIN));
        roundtrip(&Value::I64(-1));
        roundtrip(&Value::F64(f64::NAN));
        roundtrip(&Value::F64(f64::MIN_POSITIVE));
        roundtrip(&Value::from("strings ☃"));
        roundtrip(&Value::from(vec![0u8, 255, 127]));
    }

    #[test]
    fn nested_round_trip() {
        roundtrip(&Value::map([
            ("list", Value::list([Value::Null, Value::from(3i64)])),
            ("inner", Value::map([("k", Value::from("v"))])),
        ]));
    }

    #[test]
    fn empty_containers_round_trip() {
        roundtrip(&Value::list([]));
        roundtrip(&Value::map::<&str, _>([]));
        roundtrip(&Value::from(""));
        roundtrip(&Value::from(Vec::<u8>::new()));
    }

    #[test]
    fn truncated_input_rejected() {
        let buf = to_binary(&Value::from("hello world"));
        for cut in 0..buf.len() {
            assert!(from_binary(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(from_binary(&[0x7F]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = to_binary(&Value::Null);
        buf.push(0);
        assert!(from_binary(&buf).is_err());
    }

    #[test]
    fn invalid_utf8_in_string_rejected() {
        // TAG_STR, len=1, invalid continuation byte.
        assert!(from_binary(&[TAG_STR, 1, 0xFF]).is_err());
    }

    #[test]
    fn absurd_list_count_rejected_without_oom() {
        let mut buf = vec![TAG_LIST];
        varint::write_u64(&mut buf, u32::MAX as u64);
        assert!(from_binary(&buf).is_err());
    }

    #[test]
    fn deep_nesting_rejected() {
        let mut v = Value::Null;
        for _ in 0..(MAX_DEPTH + 2) {
            v = Value::list([v]);
        }
        let buf = to_binary(&v);
        assert!(from_binary(&buf).is_err());
    }

    #[test]
    fn binary_is_smaller_than_text_for_blobs() {
        let v = Value::from(vec![0xABu8; 1024]);
        let bin = to_binary(&v);
        let txt = crate::text::to_text(&v);
        assert!(bin.len() < txt.len());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::I64),
            // Finite floats only; NaN breaks PartialEq-based comparison.
            (-1e12f64..1e12).prop_map(Value::F64),
            "[a-zA-Z0-9 ☃]{0,16}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..64)
                .prop_map(|b| Value::Bytes(b.into())),
        ];
        leaf.prop_recursive(4, 64, 8, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..8).prop_map(Value::List),
                proptest::collection::vec(("[a-z]{1,6}", inner), 0..8)
                    .prop_map(Value::Map),
            ]
        })
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_values(v in arb_value()) {
            let buf = to_binary(&v);
            prop_assert_eq!(from_binary(&buf).unwrap(), v);
        }

        #[test]
        fn text_and_binary_agree(v in arb_value()) {
            let via_text = crate::text::from_text(&crate::text::to_text(&v)).unwrap();
            let via_bin = from_binary(&to_binary(&v)).unwrap();
            prop_assert_eq!(via_text, via_bin);
        }

        #[test]
        fn random_bytes_never_panic(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = from_binary(&buf);
        }
    }
}
