//! Decode error type shared by the text and binary codecs.

use std::error::Error;
use std::fmt;

/// Error returned when decoding a serialized document fails.
///
/// Carries the byte offset at which the problem was detected and a
/// human-readable reason, so harness output can point at the exact
/// position of a corrupt payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    offset: usize,
    reason: String,
}

impl DecodeError {
    /// Creates a decode error at `offset` with the given `reason`.
    pub fn new(offset: usize, reason: impl Into<String>) -> Self {
        Self { offset, reason: reason.into() }
    }

    /// Byte offset in the input at which decoding failed.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Human-readable description of the failure.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_reason() {
        let err = DecodeError::new(42, "unexpected token");
        let text = err.to_string();
        assert!(text.contains("42"));
        assert!(text.contains("unexpected token"));
    }

    #[test]
    fn accessors_round_trip() {
        let err = DecodeError::new(7, "bad escape");
        assert_eq!(err.offset(), 7);
        assert_eq!(err.reason(), "bad escape");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DecodeError>();
    }
}
