//! Serialization framework for the Roadrunner reproduction.
//!
//! Serverless baselines in the Roadrunner paper (RunC containers and
//! WasmEdge functions) exchange data over HTTP, which requires converting
//! structured in-memory data into a linear byte stream (serialization) at
//! the source and reconstructing it (deserialization) at the target.
//! Roadrunner's core claim is that this step can be skipped entirely by
//! transferring raw linear-memory regions.
//!
//! This crate provides the machinery both sides need:
//!
//! * [`Value`] — a structured, self-describing data model (the "potentially
//!   complex data structures" of the paper's §1).
//! * [`text`] — a JSON-like text codec, the serialization format the
//!   HTTP-based baselines pay for.
//! * [`binary`] — a compact tag-length-value binary codec, used where the
//!   baselines opt into binary framing.
//! * [`raw`] — zero-copy raw views over [`bytes::Bytes`], the
//!   serialization-free representation Roadrunner ships between linear
//!   memories.
//! * [`payload`] — synthetic workload payload generators used by the
//!   evaluation harness (structured records of a requested size, mirroring
//!   the "serialized strings" exchanged by functions `a` and `b` in §6.1).
//!
//! # Example
//!
//! ```
//! use roadrunner_serial::{text, Value};
//!
//! # fn main() -> Result<(), roadrunner_serial::DecodeError> {
//! let v = Value::map([
//!     ("sensor", Value::from("cam-7")),
//!     ("frames", Value::list([Value::from(1i64), Value::from(2i64)])),
//! ]);
//! let encoded = text::to_text(&v);
//! let decoded = text::from_text(&encoded)?;
//! assert_eq!(v, decoded);
//! # Ok(())
//! # }
//! ```

mod error;
mod value;

pub mod binary;
pub mod payload;
pub mod raw;
pub mod text;
pub mod varint;

pub use error::DecodeError;
pub use payload::Payload;
pub use raw::RawView;
pub use value::Value;
