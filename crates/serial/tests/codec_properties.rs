//! Round-trip property tests for the serialization codecs: arbitrary
//! [`Value`] trees must survive text-encode→decode and
//! binary-encode→decode unchanged, and both codecs must agree on the
//! byte-length accounting the cost model charges serialization work by
//! (`heap_size` for the per-byte component, `node_count` for the
//! per-node component).

use bytes::Bytes;
use proptest::prelude::*;
use roadrunner_serial::{binary, text, Value};

/// Splitmix-style generator so value shapes derive deterministically
/// from the proptest-provided seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A pseudo-random string exercising escapes, control characters and
/// multi-byte UTF-8.
fn string_of(rng: &mut Mix, max_len: usize) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{7f}', 'é', '☃', '𝕏', ':',
        ',', '{', '}', '[', ']', '\'',
    ];
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize]).collect()
}

/// A pseudo-random finite float that is not an integral value formatted
/// ambiguously — the text codec handles all finite floats, so draw from
/// the full mantissa range.
fn float_of(rng: &mut Mix) -> f64 {
    let mantissa = rng.next() as i64 as f64;
    let scale = [1e-6, 1e-3, 1.0, 1e3, 1e9][rng.below(5) as usize];
    mantissa / 997.0 * scale
}

/// Builds a random value tree of at most `depth` levels.
fn value_of(rng: &mut Mix, depth: usize) -> Value {
    let pick = if depth == 0 { rng.below(7) } else { rng.below(9) };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::I64(rng.next() as i64),
        3 => Value::F64(float_of(rng)),
        4 => Value::Str(string_of(rng, 24)),
        5 => {
            let len = rng.below(48) as usize;
            Value::Bytes(Bytes::from((0..len).map(|_| rng.next() as u8).collect::<Vec<_>>()))
        }
        6 => {
            let specials = [f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.5];
            Value::F64(specials[rng.below(4) as usize])
        }
        7 => {
            let len = rng.below(5) as usize;
            Value::list((0..len).map(|_| value_of(rng, depth - 1)))
        }
        _ => {
            let len = rng.below(5) as usize;
            Value::map((0..len).map(|i| (format!("k{i}-{}", string_of(rng, 6)), value_of(rng, depth - 1))))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_codec_round_trips_arbitrary_trees(seed in any::<u64>()) {
        let mut rng = Mix(seed);
        let value = value_of(&mut rng, 3);
        let encoded = text::to_text(&value);
        let decoded = text::from_text(&encoded)
            .unwrap_or_else(|e| panic!("decoding {encoded:?}: {e}"));
        prop_assert_eq!(&decoded, &value, "text was {:?}", encoded);
    }

    #[test]
    fn binary_codec_round_trips_arbitrary_trees(seed in any::<u64>()) {
        let mut rng = Mix(seed ^ 0xB1A2);
        let value = value_of(&mut rng, 3);
        let encoded = binary::to_binary(&value);
        let decoded = binary::from_binary(&encoded)
            .unwrap_or_else(|e| panic!("decoding binary: {e}"));
        prop_assert_eq!(decoded, value);
    }

    #[test]
    fn codecs_agree_on_cost_model_byte_accounting(seed in any::<u64>()) {
        // The cost model charges serialization per payload byte
        // (heap_size) plus per structured node (node_count). Both codecs
        // must reconstruct a tree with *identical* accounting, or the
        // baselines' charged costs would depend on which codec carried
        // the edge.
        let mut rng = Mix(seed ^ 0xACC7);
        let value = value_of(&mut rng, 3);
        let via_text = text::from_text(&text::to_text(&value)).expect("text round-trip");
        let via_binary = binary::from_binary(&binary::to_binary(&value)).expect("binary round-trip");
        prop_assert_eq!(via_text.node_count(), value.node_count());
        prop_assert_eq!(via_binary.node_count(), value.node_count());
        prop_assert_eq!(via_text.heap_size(), value.heap_size());
        prop_assert_eq!(via_binary.heap_size(), value.heap_size());
    }

    #[test]
    fn binary_is_never_larger_than_text_for_byte_blobs(len in 0usize..4_096, seed in any::<u64>()) {
        // Hex-escaping in the text codec doubles blob bytes; the binary
        // codec's tag-length-value framing must stay within a small
        // constant of the raw length — the asymmetry the baselines'
        // format choice trades on.
        let mut rng = Mix(seed);
        let value = Value::Bytes(Bytes::from(
            (0..len).map(|_| rng.next() as u8).collect::<Vec<_>>(),
        ));
        let text_len = text::to_text(&value).len();
        let binary_len = binary::to_binary(&value).len();
        prop_assert!(binary_len <= text_len.max(16));
        prop_assert!(binary_len >= len, "framing cannot shrink opaque bytes");
    }
}
