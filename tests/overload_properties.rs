//! Property-based proof that the overload-control layer keeps its
//! contracts over arbitrary DAGs, arbitrary outage schedules, and
//! arbitrary knob settings:
//!
//! 1. **Conservation** — every arrival ends exactly one way:
//!    `arrivals == completed + failed + deadline_exceeded + shed`,
//!    globally and per tenant, whatever combination of deadlines,
//!    budgets, breakers, and bounded queues is active.
//! 2. **Budget cap** — with a burst-only retry budget (no refill, no
//!    success credit) the run can never absorb more retries than the
//!    buckets it could possibly have opened.
//! 3. **Determinism** — breaker state machines and budget buckets run
//!    on virtual time only: replaying the same (dag, schedule, config)
//!    reproduces the run field for field.
//! 4. **Transparency** — the default (all-off) [`OverloadConfig`] is
//!    byte-identical to the plain failure engine, the contract the
//!    fig12/fig13 CI reference diffs pin.
//!
//! Same seeded-generator idiom as `failure_properties`: a failing case
//! shrinks to a reproducible (dag, schedule, config) triple.

use std::collections::HashSet;

use bytes::Bytes;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use roadrunner_platform::{
    AdmissionConfig, ArrivalProcess, BreakerConfig, ClosedLoop, DataPlane, FailurePlan, LoadRun,
    MultiLoad, OpenLoop, OverloadConfig, PlatformError, QueueConfig, RetryBudgetConfig,
    RetryPolicy, ShedPolicy, SpreadLoad, TenantLoad, TransferTiming, WorkflowDag, WorkflowSpec,
    RETRY_COST_MILLITOKENS,
};
use roadrunner_vkernel::{Nanos, OutageSchedule, SchedResources, VirtualClock};

/// Splitmix-style generator so schedule and config shapes derive
/// deterministically from the proptest-provided seed (same idiom as
/// `failure_properties`).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

/// Builds a random *forward* DAG of `n` nodes (connected and acyclic by
/// construction), plus up to `extra` additional forward edges.
fn forward_dag(n: usize, extra: usize, seed: u64) -> WorkflowDag {
    let mut rng = Mix(seed);
    let mut dag = WorkflowDag::new();
    let name = |i: usize| format!("f{i}");
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    for j in 1..n {
        let i = rng.below(j as u64) as usize;
        dag.add_edge(name(i), name(j));
        present.insert((i, j));
    }
    for _ in 0..extra {
        let j = 1 + rng.below((n - 1) as u64) as usize;
        let i = rng.below(j as u64) as usize;
        if present.insert((i, j)) {
            dag.add_edge(name(i), name(j));
        }
    }
    dag
}

/// A deterministic plane charging fixed phase costs (the engine's
/// placement wrappers route transfers, so the inner plane needs no
/// placement table).
struct FixedPlane {
    clock: VirtualClock,
}

impl DataPlane for FixedPlane {
    fn transfer(&mut self, from: &str, to: &str, p: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, p).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        _from: &str,
        _to: &str,
        p: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let timing = TransferTiming {
            prepare_ns: 200,
            transfer_ns: 1_000 + p.len() as u64,
            consume_ns: 300,
        };
        self.clock.advance(timing.total_ns());
        Ok((p, Some(timing)))
    }
}

/// A pseudo-random but deterministic outage schedule over `nodes` stable
/// ids: seeded link flaps plus up to two transient node down-windows.
fn arbitrary_schedule(seed: u64, nodes: usize, horizon_ns: Nanos) -> OutageSchedule {
    let ids: Vec<u64> = (0..nodes as u64).collect();
    let mut rng = Mix(seed ^ 0xDEAD_BEEF);
    let flaps = (rng.below(9)) as usize;
    let down = 500 + rng.below(horizon_ns / 8);
    let mut schedule = OutageSchedule::seeded_link_flaps(seed, &ids, horizon_ns, flaps, down);
    for _ in 0..rng.below(3) {
        let id = ids[rng.below(ids.len() as u64) as usize];
        let from = rng.below(horizon_ns);
        let until = from + 500 + rng.below(horizon_ns / 8);
        schedule = schedule.node_down(id, from, until);
    }
    schedule
}

/// A pseudo-random overload configuration: each knob independently on
/// or off, parameters drawn over ranges wide enough to hit the
/// degenerate corners (zero-capacity queues, zero-retry budgets,
/// hair-trigger breakers, deadlines shorter than one edge).
fn arbitrary_overload(seed: u64) -> OverloadConfig {
    let mut rng = Mix(seed ^ 0x0DDB_A110);
    let deadline_ns = rng.chance(2).then(|| 1_000 + rng.below(60_000));
    let retry_budget = rng.chance(2).then(|| RetryBudgetConfig {
        refill_millitokens_per_s: rng.below(3) * 400_000,
        burst_millitokens: rng.below(6) * RETRY_COST_MILLITOKENS,
        per_success_millitokens: rng.below(500),
    });
    let breaker = rng.chance(2).then(|| BreakerConfig {
        window_ns: 1_000 + rng.below(20_000),
        failure_rate: (1, 1 + rng.below(3) as u32),
        min_samples: 1 + rng.below(6) as u32,
        open_ns: 1_000 + rng.below(20_000),
        half_open_probes: 1 + rng.below(3) as u32,
        placement_penalty_ns: 1 << (16 + rng.below(16)),
    });
    let queue = rng.chance(2).then(|| QueueConfig {
        max_in_flight: 1 + rng.below(6) as usize,
        queue_cap: rng.below(8) as usize,
        policy: match rng.below(3) {
            0 => ShedPolicy::RejectNewest,
            1 => ShedPolicy::RejectOldest,
            _ => ShedPolicy::CoDel { target_ns: 500 + rng.below(10_000) },
        },
    });
    OverloadConfig { deadline_ns, retry_budget, breaker, queue }
}

/// Conservation and uniqueness invariants every overloaded run must
/// satisfy: nothing vanishes, nothing doubles, the per-outcome flags
/// and the per-tenant rollups agree with the aggregates.
fn assert_overload_conserved(run: &LoadRun, arrivals: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(run.arrivals, arrivals, "every arrival is counted");
    prop_assert_eq!(
        run.outcomes.len() + run.shed,
        run.arrivals,
        "an arrival is either admitted or shed"
    );
    prop_assert_eq!(
        run.completed() + run.failed + run.deadline_exceeded,
        run.outcomes.len(),
        "an admitted instance completes, fails, or blows its deadline"
    );
    prop_assert_eq!(run.outcomes.iter().filter(|o| o.failed).count(), run.failed);
    prop_assert_eq!(
        run.outcomes.iter().filter(|o| o.deadline_exceeded).count(),
        run.deadline_exceeded
    );
    prop_assert_eq!(
        run.outcomes.iter().map(|o| u64::from(o.retries)).sum::<u64>(),
        run.retries,
        "aggregate retry count must match the per-outcome sums"
    );
    for (k, outcome) in run.outcomes.iter().enumerate() {
        prop_assert_eq!(outcome.instance, k);
        prop_assert!(outcome.tenant < run.tenants.len());
        prop_assert!(
            !(outcome.failed && outcome.deadline_exceeded),
            "failed and deadline_exceeded are mutually exclusive"
        );
        prop_assert!(outcome.finish_ns >= outcome.release_ns);
        prop_assert_eq!(outcome.sojourn_ns, outcome.finish_ns - outcome.release_ns);
    }
    // The per-tenant rollups partition the aggregates exactly.
    let sum = |f: fn(&roadrunner_platform::TenantStats) -> usize| -> usize {
        run.tenants.iter().map(f).sum()
    };
    prop_assert_eq!(sum(|t| t.arrivals), run.arrivals);
    prop_assert_eq!(sum(|t| t.completed), run.completed());
    prop_assert_eq!(sum(|t| t.failed), run.failed);
    prop_assert_eq!(sum(|t| t.deadline_exceeded), run.deadline_exceeded);
    prop_assert_eq!(sum(|t| t.shed), run.shed);
    for stats in &run.tenants {
        prop_assert_eq!(
            stats.completed + stats.failed + stats.deadline_exceeded + stats.shed,
            stats.arrivals,
            "per-tenant conservation"
        );
    }
    Ok(())
}

/// Field-for-field equality of two runs — the byte-identity contract,
/// extended over the overload fields (tenant lane, deadline flag, shed
/// and deadline aggregates, per-tenant rollups).
fn assert_runs_identical(a: &LoadRun, b: &LoadRun) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        prop_assert_eq!(x.instance, y.instance);
        prop_assert_eq!(x.user, y.user);
        prop_assert_eq!(x.tenant, y.tenant);
        prop_assert_eq!(x.release_ns, y.release_ns);
        prop_assert_eq!(x.cold_start_ns, y.cold_start_ns);
        prop_assert_eq!(x.finish_ns, y.finish_ns);
        prop_assert_eq!(x.sojourn_ns, y.sojourn_ns);
        prop_assert_eq!(&x.assignment, &y.assignment);
        prop_assert_eq!(x.failed, y.failed);
        prop_assert_eq!(x.deadline_exceeded, y.deadline_exceeded);
        prop_assert_eq!(x.retries, y.retries);
    }
    prop_assert_eq!(a.horizon_ns, b.horizon_ns);
    prop_assert_eq!(a.arrivals, b.arrivals);
    prop_assert_eq!(a.shed, b.shed);
    prop_assert_eq!(a.failed, b.failed);
    prop_assert_eq!(a.deadline_exceeded, b.deadline_exceeded);
    prop_assert_eq!(a.retries, b.retries);
    prop_assert_eq!(a.final_nodes, b.final_nodes);
    prop_assert_eq!(a.offered_rps.to_bits(), b.offered_rps.to_bits());
    prop_assert_eq!(a.cpu_utilization.to_bits(), b.cpu_utilization.to_bits());
    prop_assert_eq!(a.link_utilization.to_bits(), b.link_utilization.to_bits());
    prop_assert_eq!(a.tenants.len(), b.tenants.len());
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        prop_assert_eq!(&x.name, &y.name);
        prop_assert_eq!(x.arrivals, y.arrivals);
        prop_assert_eq!(x.completed, y.completed);
        prop_assert_eq!(x.failed, y.failed);
        prop_assert_eq!(x.deadline_exceeded, y.deadline_exceeded);
        prop_assert_eq!(x.shed, y.shed);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary multi-tenant workloads × arbitrary outage schedules ×
    /// arbitrary overload configs: every arrival is conserved across
    /// completed / failed / deadline_exceeded / shed, globally and per
    /// tenant, and the whole run is deterministic — replaying the same
    /// triple reproduces it field for field (which covers breaker and
    /// budget determinism: both live on virtual time alone).
    #[test]
    fn conservation_holds_under_arbitrary_overload_configs(
        n in 2usize..6,
        extra in 0usize..4,
        seed in any::<u64>(),
        nodes in 2usize..5,
        tenants in 1usize..4,
        per_tenant in 1usize..8,
    ) {
        let overload = arbitrary_overload(seed);
        let horizon: Nanos = 40_000 + (tenants * per_tenant) as Nanos * 4_000;
        let schedule = arbitrary_schedule(seed, nodes, horizon);
        let plan = FailurePlan::new(RetryPolicy::new(4, 500, 6_000)).with_outages(schedule);
        let mut rng = Mix(seed ^ 0x007E_4A47);
        let loads: Vec<TenantLoad> = (0..tenants)
            .map(|t| {
                let spec = WorkflowSpec::from_dag(
                    format!("ov-{t}"),
                    format!("tenant-{t}"),
                    forward_dag(n, extra, seed.wrapping_add(t as u64)),
                );
                let mut at: Nanos = rng.below(3_000);
                let releases = (0..per_tenant)
                    .map(|_| {
                        at += 200 + rng.below(5_000);
                        at
                    })
                    .collect();
                TenantLoad {
                    name: format!("tenant-{t}"),
                    spec,
                    payload: Bytes::from_static(b"conserve"),
                    releases,
                    weight: 1 + rng.below(4),
                }
            })
            .collect();
        let arrivals = tenants * per_tenant;

        let run_once = || -> LoadRun {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane { clock: clock.clone() };
            let mut resources = SchedResources::new(nodes, 2);
            let mut policy = SpreadLoad::new();
            let load = MultiLoad { tenants: loads.clone(), admission: AdmissionConfig::warm() };
            load.run_overloaded(
                &mut plane, &clock, &mut resources, &mut policy, None, Some(&plan), &overload,
            )
            .unwrap()
        };

        let run = run_once();
        assert_overload_conserved(&run, arrivals)?;
        prop_assert_eq!(run.tenants.len(), tenants);
        if overload.queue.is_none() {
            prop_assert_eq!(run.shed, 0, "nothing sheds without a bounded queue");
        }
        if overload.deadline_ns.is_none() {
            prop_assert_eq!(run.deadline_exceeded, 0, "no deadline, no deadline aborts");
        }
        // Same triple, same run: breakers, budgets, and the weighted
        // queue are all deterministic in virtual time.
        assert_runs_identical(&run, &run_once())?;
    }

    /// A burst-only retry budget (no time refill, no success credit) is
    /// a hard cap: the run can never absorb more retries than the
    /// buckets it could possibly have opened — one per
    /// (tenant, function, node) triple, `burst` retries each.
    #[test]
    fn a_burst_only_retry_budget_is_never_exceeded(
        n in 2usize..6,
        extra in 0usize..4,
        seed in any::<u64>(),
        nodes in 2usize..4,
        instances in 2usize..10,
        burst_retries in 0u64..4,
    ) {
        let spec = WorkflowSpec::from_dag("ov-budget", "t", forward_dag(n, extra, seed));
        let horizon: Nanos = 40_000 + (instances as Nanos) * 4_000;
        let schedule = arbitrary_schedule(seed, nodes, horizon);
        let plan = FailurePlan::new(RetryPolicy::new(6, 500, 6_000)).with_outages(schedule);
        let overload = OverloadConfig {
            retry_budget: Some(RetryBudgetConfig {
                refill_millitokens_per_s: 0,
                burst_millitokens: burst_retries * RETRY_COST_MILLITOKENS,
                per_success_millitokens: 0,
            }),
            ..OverloadConfig::default()
        };

        let clock = VirtualClock::new();
        let mut plane = FixedPlane { clock: clock.clone() };
        let mut resources = SchedResources::new(nodes, 2);
        let mut policy = SpreadLoad::new();
        let load = OpenLoop {
            spec,
            payload: Bytes::from_static(b"budget"),
            arrivals: ArrivalProcess::Uniform { interval_ns: 2_500 },
            instances,
            admission: AdmissionConfig::warm(),
        };
        let run = load
            .run_overloaded(
                &mut plane, &clock, &mut resources, &mut policy, None, Some(&plan), &overload,
            )
            .unwrap();

        assert_overload_conserved(&run, instances)?;
        // One bucket per (tenant=1, function, node) triple, each opened
        // at `burst_retries` tokens and never refilled.
        let cap = (n * nodes) as u64 * burst_retries;
        prop_assert!(
            run.retries <= cap,
            "retries {} exceed the {} the budget could ever supply",
            run.retries,
            cap
        );
        if burst_retries == 0 {
            prop_assert_eq!(run.retries, 0, "a zero budget means fail-fast, no retries at all");
        }
    }

    /// Circuit breakers alone (hair-trigger to lazy, random windows and
    /// probe counts) keep the run deterministic under a closed loop —
    /// the state machine advances on virtual time and recorded
    /// outcomes, never on host state or map order.
    #[test]
    fn breaker_decisions_replay_identically(
        n in 2usize..6,
        extra in 0usize..4,
        seed in any::<u64>(),
        nodes in 2usize..5,
        users in 1usize..5,
        rounds in 1usize..4,
    ) {
        let spec = WorkflowSpec::from_dag("ov-breaker", "t", forward_dag(n, extra, seed));
        let instances = users * rounds;
        let horizon: Nanos = 40_000 + (instances as Nanos) * 4_000;
        let schedule = arbitrary_schedule(seed, nodes, horizon);
        let plan = FailurePlan::new(RetryPolicy::new(4, 500, 6_000)).with_outages(schedule);
        let mut rng = Mix(seed ^ 0x0B4E_ACE4);
        let overload = OverloadConfig {
            breaker: Some(BreakerConfig {
                window_ns: 1_000 + rng.below(20_000),
                failure_rate: (1, 1 + rng.below(3) as u32),
                min_samples: 1 + rng.below(4) as u32,
                open_ns: 1_000 + rng.below(20_000),
                half_open_probes: 1 + rng.below(3) as u32,
                placement_penalty_ns: 1 << (16 + rng.below(16)),
            }),
            ..OverloadConfig::default()
        };

        let run_once = || -> LoadRun {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane { clock: clock.clone() };
            let mut resources = SchedResources::new(nodes, 2);
            let mut policy = SpreadLoad::new();
            let load = ClosedLoop {
                spec: spec.clone(),
                payload: Bytes::from_static(b"breaker"),
                users,
                think_ns: 2_000,
                ramp_ns: 700,
                instances,
                admission: AdmissionConfig::warm(),
            };
            load.run_overloaded(
                &mut plane, &clock, &mut resources, &mut policy, None, Some(&plan), &overload,
            )
            .unwrap()
        };

        let run = run_once();
        assert_overload_conserved(&run, instances)?;
        assert_runs_identical(&run, &run_once())?;
        assert_runs_identical(&run, &run_once())?;
    }

    /// The default (all-off) config is invisible: `run_overloaded` with
    /// `OverloadConfig::default()` is field-for-field identical to
    /// `run_with_failures` on arbitrary DAGs under a real failure plan
    /// — the contract the fig12/fig13 byte-identity gates rely on.
    #[test]
    fn the_empty_config_is_byte_identical_to_the_failure_engine(
        n in 2usize..7,
        extra in 0usize..5,
        seed in any::<u64>(),
        nodes in 2usize..5,
        instances in 1usize..12,
        payload_len in 0usize..2_000,
    ) {
        let spec = WorkflowSpec::from_dag("ov-empty", "t", forward_dag(n, extra, seed));
        let payload = Bytes::from(vec![(seed & 0xFF) as u8; payload_len]);
        let horizon: Nanos = 40_000 + (instances as Nanos) * 4_000;
        let schedule = arbitrary_schedule(seed, nodes, horizon);
        let plan = FailurePlan::new(RetryPolicy::new(4, 500, 6_000)).with_outages(schedule);
        let off = OverloadConfig::default();
        prop_assert!(off.is_off());

        let run_with = |overload: Option<&OverloadConfig>| -> LoadRun {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane { clock: clock.clone() };
            let mut resources = SchedResources::new(nodes, 2);
            let mut policy = SpreadLoad::new();
            let load = OpenLoop {
                spec: spec.clone(),
                payload: payload.clone(),
                arrivals: ArrivalProcess::Poisson { mean_interval_ns: 3_000, seed },
                instances,
                admission: AdmissionConfig::cold(10_000),
            };
            match overload {
                Some(cfg) => load
                    .run_overloaded(
                        &mut plane, &clock, &mut resources, &mut policy, None, Some(&plan), cfg,
                    )
                    .unwrap(),
                None => load
                    .run_with_failures(
                        &mut plane, &clock, &mut resources, &mut policy, None, Some(&plan),
                    )
                    .unwrap(),
            }
        };

        let plain = run_with(None);
        let overloaded = run_with(Some(&off));
        prop_assert_eq!(overloaded.shed, 0);
        prop_assert_eq!(overloaded.deadline_exceeded, 0);
        assert_runs_identical(&plain, &overloaded)?;
        assert_overload_conserved(&overloaded, instances)?;
    }
}
