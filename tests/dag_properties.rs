//! Property-based tests for the workflow DAG engine: random graphs must
//! validate exactly when acyclic, every valid graph must execute, and the
//! serial and concurrent executors must agree on what moved.

use std::collections::HashSet;

use bytes::Bytes;
use proptest::prelude::*;
use roadrunner_platform::{
    critical_path_ns, execute, execute_concurrent, DataPlane, PlatformError, TransferTiming,
    WorkflowDag, WorkflowSpec,
};
use roadrunner_vkernel::{SchedResources, VirtualClock};

/// Splitmix-style generator so graph shapes derive deterministically from
/// the proptest-provided seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Builds a random *forward* DAG of `n` nodes: every node j > 0 gets an
/// edge from some i < j (so the graph is connected and acyclic by
/// construction), plus up to `extra` additional forward edges.
fn forward_dag(n: usize, extra: usize, seed: u64) -> WorkflowDag {
    let mut rng = Mix(seed);
    let mut dag = WorkflowDag::new();
    let name = |i: usize| format!("f{i}");
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    for j in 1..n {
        let i = rng.below(j as u64) as usize;
        dag.add_edge(name(i), name(j));
        present.insert((i, j));
    }
    for _ in 0..extra {
        let j = 1 + rng.below((n - 1) as u64) as usize;
        let i = rng.below(j as u64) as usize;
        if present.insert((i, j)) {
            dag.add_edge(name(i), name(j));
        }
    }
    dag
}

/// A pass-through plane charging distinct prepare/transfer/consume costs
/// and spreading functions across two nodes by name parity.
struct TestPlane {
    clock: VirtualClock,
}

impl TestPlane {
    fn timing(payload_len: usize) -> TransferTiming {
        TransferTiming {
            prepare_ns: 200,
            transfer_ns: 1_000 + payload_len as u64,
            consume_ns: 300,
        }
    }
}

impl DataPlane for TestPlane {
    fn transfer(&mut self, _: &str, _: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.clock.advance(Self::timing(payload.len()).total_ns());
        Ok(payload)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let timing = Self::timing(payload.len());
        let received = self.transfer(from, to, payload)?;
        Ok((received, Some(timing)))
    }

    fn placement(&self, function: &str) -> Option<usize> {
        Some(function.len() % 2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_forward_graphs_validate_and_topo_sort(
        n in 2usize..10,
        extra in 0usize..8,
        seed in any::<u64>(),
    ) {
        let dag = forward_dag(n, extra, seed);
        prop_assert!(dag.validate().is_ok());
        let order = dag.topo_order().unwrap();
        prop_assert_eq!(order.len(), dag.node_count());
        let mut rank = vec![0usize; dag.node_count()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        for (u, v) in dag.edges() {
            prop_assert!(rank[u] < rank[v], "edge {}->{} violates topo order", u, v);
        }
    }

    #[test]
    fn graphs_with_a_back_edge_are_always_rejected(
        n in 2usize..10,
        extra in 0usize..8,
        seed in any::<u64>(),
    ) {
        let mut dag = forward_dag(n, extra, seed);
        // Reverse an existing edge: a guaranteed cycle.
        let (u, v) = {
            let mut rng = Mix(seed ^ 0xDEAD_BEEF);
            let edges: Vec<_> = dag.edges().collect();
            edges[rng.below(edges.len() as u64) as usize]
        };
        let (from, to) = (dag.node_name(u).to_owned(), dag.node_name(v).to_owned());
        dag.add_edge(&to, &from);
        prop_assert!(matches!(dag.validate(), Err(PlatformError::InvalidWorkflow(_))));
    }

    #[test]
    fn self_loops_are_always_rejected(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut dag = forward_dag(n, 0, seed);
        let node = {
            let mut rng = Mix(seed ^ 0x5EED);
            rng.below(n as u64) as usize
        };
        let name = dag.node_name(node).to_owned();
        dag.add_edge(&name, &name);
        prop_assert!(dag.validate().is_err());
    }

    #[test]
    fn valid_graphs_always_execute_every_edge(
        n in 2usize..10,
        extra in 0usize..8,
        seed in any::<u64>(),
        payload_len in 1usize..5_000,
    ) {
        let dag = forward_dag(n, extra, seed);
        let spec = WorkflowSpec::from_dag("prop", "t", dag);
        let clock = VirtualClock::new();
        let mut plane = TestPlane { clock: clock.clone() };
        let run = execute(&mut plane, &clock, &spec, Bytes::from(vec![7u8; payload_len])).unwrap();
        prop_assert_eq!(run.edges.len(), spec.dag.edge_count());
        prop_assert!(run.edges.iter().all(|e| e.bytes == payload_len));
    }

    #[test]
    fn serial_and_concurrent_executors_agree(
        n in 2usize..10,
        extra in 0usize..8,
        seed in any::<u64>(),
        payload_len in 1usize..5_000,
    ) {
        let dag = forward_dag(n, extra, seed);
        let spec = WorkflowSpec::from_dag("prop", "t", dag);
        let payload = Bytes::from(vec![0xA5u8; payload_len]);

        let clock = VirtualClock::new();
        let mut plane = TestPlane { clock: clock.clone() };
        let serial = execute(&mut plane, &clock, &spec, payload.clone()).unwrap();

        let clock = VirtualClock::new();
        let mut plane = TestPlane { clock: clock.clone() };
        let mut resources = SchedResources::new(2, 4);
        let concurrent =
            execute_concurrent(&mut plane, &clock, &spec, payload, &mut resources).unwrap();

        prop_assert_eq!(serial.edges.len(), concurrent.edges.len());
        for edge in &serial.edges {
            let twin = concurrent
                .edge(&edge.from, &edge.to)
                .expect("every serial edge ran concurrently too");
            prop_assert_eq!(edge.bytes, twin.bytes);
            prop_assert_eq!(edge.checksum(), twin.checksum());
        }
        // The overlapped schedule is bounded by the critical path below
        // and the fully serialized schedule above.
        let critical = critical_path_ns(&spec, &concurrent).unwrap();
        prop_assert!(concurrent.total_latency_ns >= critical);
        prop_assert!(concurrent.total_latency_ns <= serial.total_latency_ns);
    }
}
