//! Property-based proof that the transfer-cost memo is observation-
//! equivalent: over arbitrary DAGs, payload kinds and placements, a
//! [`MemoizedPlane`]-wrapped plane must produce **identical**
//! `TransferTiming` attributions and payload bytes to the unmemoized
//! plane — across repeated instances, where every transfer after the
//! first is a cache replay.

use std::collections::HashSet;
use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;
use roadrunner_baselines::{RuncPair, WasmedgePair};
use roadrunner_platform::{
    execute_concurrent, DataPlane, MemoizedPlane, PlatformError, TransferTiming, WorkflowDag,
    WorkflowRun, WorkflowSpec,
};
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_vkernel::{SchedResources, Testbed, VirtualClock};

/// Splitmix-style generator so graph shapes derive deterministically from
/// the proptest-provided seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Builds a random *forward* DAG of `n` nodes (connected and acyclic by
/// construction), plus up to `extra` additional forward edges.
fn forward_dag(n: usize, extra: usize, seed: u64) -> WorkflowDag {
    let mut rng = Mix(seed);
    let mut dag = WorkflowDag::new();
    let name = |i: usize| format!("f{i}");
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    for j in 1..n {
        let i = rng.below(j as u64) as usize;
        dag.add_edge(name(i), name(j));
        present.insert((i, j));
    }
    for _ in 0..extra {
        let j = 1 + rng.below((n - 1) as u64) as usize;
        let i = rng.below(j as u64) as usize;
        if present.insert((i, j)) {
            dag.add_edge(name(i), name(j));
        }
    }
    dag
}

/// A deterministic plane whose timing and received bytes both depend on
/// the edge endpoints, the placement, and the payload content — so any
/// keying mistake in the memo shows up as a mismatched replay.
struct KeyedPlane {
    clock: VirtualClock,
    placements: Vec<usize>,
}

impl KeyedPlane {
    fn key(&self, from: &str, to: &str, payload: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(from.as_bytes());
        eat(to.as_bytes());
        eat(&(self.placement(from).unwrap_or(0) as u64).to_le_bytes());
        eat(&(self.placement(to).unwrap_or(0) as u64).to_le_bytes());
        eat(payload);
        h
    }
}

impl DataPlane for KeyedPlane {
    fn transfer(&mut self, from: &str, to: &str, payload: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, payload).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        from: &str,
        to: &str,
        payload: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let key = self.key(from, to, &payload);
        let timing = TransferTiming {
            prepare_ns: 100 + key % 400,
            transfer_ns: 1_000 + payload.len() as u64 + key % 1_000,
            consume_ns: 50 + key % 200,
        };
        self.clock.advance(timing.total_ns());
        let received: Vec<u8> =
            payload.iter().map(|b| b.wrapping_add((key & 0xFF) as u8)).collect();
        Ok((Bytes::from(received), Some(timing)))
    }

    fn placement(&self, function: &str) -> Option<usize> {
        // `fN` names index the placement table.
        let idx: usize = function[1..].parse().ok()?;
        self.placements.get(idx).copied()
    }
}

/// Edge-by-edge equality of what the plane produced: bytes, sizes and
/// per-phase latency attribution.
fn assert_runs_equal(plain: &WorkflowRun, memoized: &WorkflowRun) -> Result<(), TestCaseError> {
    prop_assert_eq!(plain.edges.len(), memoized.edges.len());
    for (a, b) in plain.edges.iter().zip(&memoized.edges) {
        prop_assert_eq!(&a.from, &b.from);
        prop_assert_eq!(&a.to, &b.to);
        prop_assert_eq!(a.bytes, b.bytes);
        prop_assert_eq!(a.latency_ns, b.latency_ns);
        prop_assert_eq!(a.start_ns, b.start_ns);
        prop_assert_eq!(a.finish_ns, b.finish_ns);
        prop_assert_eq!(a.checksum(), b.checksum());
        prop_assert_eq!(&a.received[..], &b.received[..]);
    }
    prop_assert_eq!(plain.total_latency_ns, memoized.total_latency_ns);
    Ok(())
}

use proptest::test_runner::TestCaseError;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary DAGs × arbitrary placements × arbitrary payload bytes on
    /// the synthetic keyed plane: every instance of the memoized run
    /// (including the fully-replayed later ones) matches the unmemoized
    /// plane edge for edge.
    #[test]
    fn memoized_keyed_plane_matches_unmemoized(
        n in 2usize..9,
        extra in 0usize..6,
        seed in any::<u64>(),
        payload_len in 1usize..4_000,
        nodes in 1usize..4,
    ) {
        let dag = forward_dag(n, extra, seed);
        let spec = WorkflowSpec::from_dag("memo-prop", "t", dag);
        let placements: Vec<usize> =
            (0..n).map(|i| (seed as usize).wrapping_add(i * 7) % nodes).collect();
        let payload = Bytes::from(vec![(seed & 0xFF) as u8; payload_len]);

        let clock = VirtualClock::new();
        let mut plain_plane = KeyedPlane { clock: clock.clone(), placements: placements.clone() };
        let mut resources = SchedResources::new(nodes, 4);
        let plain = execute_concurrent(
            &mut plain_plane, &clock, &spec, payload.clone(), &mut resources,
        ).unwrap();

        let clock = VirtualClock::new();
        let mut inner = KeyedPlane { clock: clock.clone(), placements };
        let mut memo = MemoizedPlane::new(&mut inner, clock.clone());
        for round in 0..3 {
            let mut resources = SchedResources::new(nodes, 4);
            let memoized = execute_concurrent(
                &mut memo, &clock, &spec, payload.clone(), &mut resources,
            ).unwrap();
            assert_runs_equal(&plain, &memoized)?;
            if round > 0 {
                prop_assert!(memo.hits() > 0, "later instances must replay from the memo");
            }
        }
        prop_assert_eq!(memo.bypasses(), 0);
        prop_assert_eq!(memo.len() as u64, memo.misses());
    }

    /// Real baseline planes (the serialize → HTTP → deserialize paths)
    /// over every payload kind: timing attribution and received bytes are
    /// identical with the memo, instance after instance.
    #[test]
    fn memoized_baselines_match_unmemoized(
        kind_pick in 0usize..3,
        seed in any::<u64>(),
        payload_len in 64usize..40_000,
        cross_node in any::<bool>(),
        runc in any::<bool>(),
    ) {
        let kind = [PayloadKind::Text, PayloadKind::SensorRecords, PayloadKind::ImageFrame]
            [kind_pick];
        let payload = Payload::synthetic(kind, seed, payload_len);
        let flat = payload.flat().clone();
        let spec = WorkflowSpec::sequence(
            "memo-baseline",
            "t",
            ["f0".to_owned(), "f1".to_owned(), "f2".to_owned()],
        );
        let peer = usize::from(cross_node);
        let build = |bed: &Arc<Testbed>| -> Box<dyn DataPlane> {
            if runc {
                Box::new(RuncPair::establish(Arc::clone(bed), 0, peer))
            } else {
                Box::new(WasmedgePair::establish(Arc::clone(bed), 0, peer))
            }
        };

        // Unmemoized reference. The first post-establish instance pays
        // one-off effects (guest heap growth); the benches always warm a
        // plane before measuring, and the memo's soundness contract is
        // cyclicity *after* warm-up — so both sides here warm with one
        // discarded unmemoized run first.
        let bed = Arc::new(Testbed::paper());
        let mut plane = build(&bed);
        let clock = bed.clock().clone();
        let mut resources = SchedResources::new(2, 4);
        execute_concurrent(plane.as_mut(), &clock, &spec, flat.clone(), &mut resources)
            .unwrap();
        let mut resources = SchedResources::new(2, 4);
        let plain = execute_concurrent(
            plane.as_mut(), &clock, &spec, flat.clone(), &mut resources,
        ).unwrap();
        let mut resources = SchedResources::new(2, 4);
        let plain_again = execute_concurrent(
            plane.as_mut(), &clock, &spec, flat.clone(), &mut resources,
        ).unwrap();
        // Warmed baselines are instance-cyclic: the property the memo
        // (and fig13's determinism assert) relies on.
        assert_runs_equal(&plain, &plain_again)?;

        let bed = Arc::new(Testbed::paper());
        let mut plane = build(&bed);
        let clock = bed.clock().clone();
        let mut resources = SchedResources::new(2, 4);
        execute_concurrent(plane.as_mut(), &clock, &spec, flat.clone(), &mut resources)
            .unwrap();
        let mut memo = MemoizedPlane::new(plane.as_mut(), clock.clone());
        let mut resources = SchedResources::new(2, 4);
        let first = execute_concurrent(
            &mut memo, &clock, &spec, flat.clone(), &mut resources,
        ).unwrap();
        assert_runs_equal(&plain, &first)?;
        let mut resources = SchedResources::new(2, 4);
        let replayed = execute_concurrent(
            &mut memo, &clock, &spec, flat.clone(), &mut resources,
        ).unwrap();
        assert_runs_equal(&plain, &replayed)?;
        prop_assert!(memo.hits() >= spec.dag.edge_count() as u64);
        prop_assert_eq!(memo.bypasses(), 0);
    }
}
