//! Property-based proof that the failure layer keeps its two core
//! contracts over arbitrary DAGs and arbitrary outage schedules:
//!
//! 1. **Conservation** — every admitted instance ends exactly one way:
//!    `outcomes.len() == completed() + failed`, no instance is dropped,
//!    duplicated, or double-counted, regardless of how links and nodes
//!    flap underneath the run.
//! 2. **Transparency** — an *empty* [`FailurePlan`] (retry policy
//!    attached, nothing ever down) leaves the engine byte-identical to
//!    the failure-free path: same outcomes, same timestamps, same
//!    utilizations, field for field.
//!
//! The schedules themselves are seeded, so a failing case shrinks to a
//! reproducible (dag, schedule) pair.

use std::collections::HashSet;

use bytes::Bytes;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use roadrunner_platform::{
    AdmissionConfig, ArrivalProcess, ClosedLoop, DataPlane, FailurePlan, LoadRun, OpenLoop, PlatformError,
    RetryPolicy, SpreadLoad, TransferTiming, WorkflowDag, WorkflowSpec,
};
use roadrunner_vkernel::{Nanos, OutageSchedule, SchedResources, VirtualClock};

/// Splitmix-style generator so schedule shapes derive deterministically
/// from the proptest-provided seed (same idiom as `memo_properties`).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Builds a random *forward* DAG of `n` nodes (connected and acyclic by
/// construction), plus up to `extra` additional forward edges.
fn forward_dag(n: usize, extra: usize, seed: u64) -> WorkflowDag {
    let mut rng = Mix(seed);
    let mut dag = WorkflowDag::new();
    let name = |i: usize| format!("f{i}");
    let mut present: HashSet<(usize, usize)> = HashSet::new();
    for j in 1..n {
        let i = rng.below(j as u64) as usize;
        dag.add_edge(name(i), name(j));
        present.insert((i, j));
    }
    for _ in 0..extra {
        let j = 1 + rng.below((n - 1) as u64) as usize;
        let i = rng.below(j as u64) as usize;
        if present.insert((i, j)) {
            dag.add_edge(name(i), name(j));
        }
    }
    dag
}

/// A deterministic plane charging fixed phase costs. The engine routes
/// transfers through its placement wrappers, so the inner plane needs no
/// placement table of its own.
struct FixedPlane {
    clock: VirtualClock,
}

impl DataPlane for FixedPlane {
    fn transfer(&mut self, from: &str, to: &str, p: Bytes) -> Result<Bytes, PlatformError> {
        self.transfer_detailed(from, to, p).map(|(received, _)| received)
    }

    fn transfer_detailed(
        &mut self,
        _from: &str,
        _to: &str,
        p: Bytes,
    ) -> Result<(Bytes, Option<TransferTiming>), PlatformError> {
        let timing = TransferTiming {
            prepare_ns: 200,
            transfer_ns: 1_000 + p.len() as u64,
            consume_ns: 300,
        };
        self.clock.advance(timing.total_ns());
        Ok((p, Some(timing)))
    }
}

/// A pseudo-random but deterministic outage schedule over `nodes` stable
/// ids: seeded link flaps plus up to two transient node down-windows.
fn arbitrary_schedule(seed: u64, nodes: usize, horizon_ns: Nanos) -> OutageSchedule {
    let ids: Vec<u64> = (0..nodes as u64).collect();
    let mut rng = Mix(seed ^ 0xDEAD_BEEF);
    let flaps = (rng.below(9)) as usize;
    let down = 500 + rng.below(horizon_ns / 8);
    let mut schedule =
        OutageSchedule::seeded_link_flaps(seed, &ids, horizon_ns, flaps, down);
    for _ in 0..rng.below(3) {
        let id = ids[rng.below(ids.len() as u64) as usize];
        let from = rng.below(horizon_ns);
        let until = from + 500 + rng.below(horizon_ns / 8);
        schedule = schedule.node_down(id, from, until);
    }
    schedule
}

/// Conservation and uniqueness invariants every run must satisfy,
/// fallible or not.
fn assert_conserved(run: &LoadRun, admitted: usize, users: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(run.outcomes.len(), admitted, "every admitted instance ends somewhere");
    prop_assert_eq!(run.completed() + run.failed, run.outcomes.len());
    prop_assert_eq!(
        run.outcomes.iter().filter(|o| o.failed).count(),
        run.failed,
        "aggregate failed count must match the per-outcome flags"
    );
    prop_assert_eq!(
        run.outcomes.iter().map(|o| u64::from(o.retries)).sum::<u64>(),
        run.retries,
        "aggregate retry count must match the per-outcome sums"
    );
    // No instance is duplicated or invented: indices are exactly 0..n,
    // in admission order.
    for (k, outcome) in run.outcomes.iter().enumerate() {
        prop_assert_eq!(outcome.instance, k);
        prop_assert!(outcome.user < users);
        prop_assert!(outcome.finish_ns >= outcome.release_ns);
        prop_assert_eq!(outcome.sojourn_ns, outcome.finish_ns - outcome.release_ns);
    }
    Ok(())
}

/// Field-for-field equality of two runs — the byte-identity contract.
fn assert_runs_identical(a: &LoadRun, b: &LoadRun) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        prop_assert_eq!(x.instance, y.instance);
        prop_assert_eq!(x.user, y.user);
        prop_assert_eq!(x.release_ns, y.release_ns);
        prop_assert_eq!(x.cold_start_ns, y.cold_start_ns);
        prop_assert_eq!(x.finish_ns, y.finish_ns);
        prop_assert_eq!(x.sojourn_ns, y.sojourn_ns);
        prop_assert_eq!(&x.assignment, &y.assignment);
        prop_assert_eq!(x.failed, y.failed);
        prop_assert_eq!(x.retries, y.retries);
    }
    prop_assert_eq!(a.horizon_ns, b.horizon_ns);
    prop_assert_eq!(a.failed, b.failed);
    prop_assert_eq!(a.retries, b.retries);
    prop_assert_eq!(a.final_nodes, b.final_nodes);
    prop_assert_eq!(a.offered_rps.to_bits(), b.offered_rps.to_bits());
    prop_assert_eq!(a.cpu_utilization.to_bits(), b.cpu_utilization.to_bits());
    prop_assert_eq!(a.link_utilization.to_bits(), b.link_utilization.to_bits());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary DAGs × arbitrary outage schedules, closed loop: every
    /// admitted instance either completes or fails — never vanishes,
    /// never doubles — and the whole fallible run is deterministic
    /// (replaying the same schedule reproduces it outcome for outcome).
    #[test]
    fn conservation_holds_under_arbitrary_outage_schedules(
        n in 2usize..7,
        extra in 0usize..4,
        seed in any::<u64>(),
        nodes in 2usize..5,
        users in 1usize..5,
        rounds in 1usize..5,
    ) {
        let spec = WorkflowSpec::from_dag("fault-prop", "t", forward_dag(n, extra, seed));
        let instances = users * rounds;
        // Per-edge service is ~1.5 µs; size the outage horizon to overlap
        // the run so windows actually land on traffic.
        let horizon: Nanos = 40_000 + (instances as Nanos) * 4_000;
        let schedule = arbitrary_schedule(seed, nodes, horizon);
        let plan = FailurePlan::new(RetryPolicy::new(4, 500, 6_000)).with_outages(schedule);

        let run_once = || -> LoadRun {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane { clock: clock.clone() };
            let mut resources = SchedResources::new(nodes, 2);
            let mut policy = SpreadLoad::new();
            let load = ClosedLoop {
                spec: spec.clone(),
                payload: Bytes::from_static(b"conserve"),
                users,
                think_ns: 2_000,
                ramp_ns: 700,
                instances,
                admission: AdmissionConfig::warm(),
            };
            load.run_with_failures(
                &mut plane, &clock, &mut resources, &mut policy, None, Some(&plan),
            )
            .unwrap()
        };

        let run = run_once();
        assert_conserved(&run, instances, users)?;
        // A failed instance burned its whole budget on the fatal edge:
        // `max_attempts` attempts means `max_attempts - 1` re-attempts.
        for outcome in run.outcomes.iter().filter(|o| o.failed) {
            prop_assert!(outcome.retries >= plan.retry().max_attempts - 1);
        }
        // Same schedule, same run: the failure layer is deterministic.
        assert_runs_identical(&run, &run_once())?;
    }

    /// An empty failure plan is invisible: open-loop runs with
    /// `Some(&empty_plan)` and with `None` are identical field for field
    /// on arbitrary DAGs — the contract the fig12/fig13 byte-identity
    /// gates rely on.
    #[test]
    fn empty_schedule_is_byte_identical_to_the_plain_engine(
        n in 2usize..8,
        extra in 0usize..5,
        seed in any::<u64>(),
        nodes in 1usize..4,
        instances in 1usize..14,
        payload_len in 0usize..2_000,
    ) {
        let spec = WorkflowSpec::from_dag("fault-empty", "t", forward_dag(n, extra, seed));
        let payload = Bytes::from(vec![(seed & 0xFF) as u8; payload_len]);
        let empty = FailurePlan::new(RetryPolicy::default());
        prop_assert!(empty.is_empty());

        let run_with = |plan: Option<&FailurePlan>| -> LoadRun {
            let clock = VirtualClock::new();
            let mut plane = FixedPlane { clock: clock.clone() };
            let mut resources = SchedResources::new(nodes, 2);
            let mut policy = SpreadLoad::new();
            let load = OpenLoop {
                spec: spec.clone(),
                payload: payload.clone(),
                arrivals: ArrivalProcess::Poisson { mean_interval_ns: 3_000, seed },
                instances,
                admission: AdmissionConfig::cold(10_000),
            };
            load.run_with_failures(&mut plane, &clock, &mut resources, &mut policy, None, plan)
                .unwrap()
        };

        let plain = run_with(None);
        let faulty = run_with(Some(&empty));
        prop_assert_eq!(faulty.failed, 0, "nothing can fail under an empty plan");
        prop_assert_eq!(faulty.retries, 0);
        assert_runs_identical(&plain, &faulty)?;
        assert_conserved(&plain, instances, instances)?;
    }
}
