//! End-to-end workflow tests spanning the whole stack: platform →
//! Roadrunner plane → shims → Wasm guests → virtual kernel.

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, Mode, RoadrunnerPlane, ShimConfig};
use roadrunner_platform::{execute, FunctionBundle, Pattern, WorkflowSpec};
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_serial::raw::fnv1a;
use roadrunner_vkernel::Testbed;
use roadrunner_wasm::encode;

fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("e2e")
            .with_tenant("test"),
    )
}

fn plane() -> (Arc<Testbed>, RoadrunnerPlane) {
    let bed = Arc::new(Testbed::paper());
    let plane = RoadrunnerPlane::new(
        Arc::clone(&bed),
        ShimConfig::default().with_load_costs(false),
    );
    (bed, plane)
}

#[test]
fn three_stage_chain_across_all_modes() {
    // a and r share a VM (user space), r -> s is kernel space,
    // s -> b crosses nodes (network): one chain exercising every mode.
    let (bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy_into_shared_vm("a", "r", bundle("r", guest::relay()), "relay", false).unwrap();
    p.deploy(0, "s", bundle("s", guest::relay()), "relay", false).unwrap();
    p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();

    assert_eq!(p.mode_of("a", "r").unwrap(), Mode::UserSpace);
    assert_eq!(p.mode_of("r", "s").unwrap(), Mode::KernelSpace);
    assert_eq!(p.mode_of("s", "b").unwrap(), Mode::Network);

    let payload = Payload::synthetic(PayloadKind::SensorRecords, 21, 3_000_000);
    let spec = WorkflowSpec::sequence(
        "e2e",
        "test",
        ["a", "r", "s", "b"].map(str::to_owned),
    );
    let clock = bed.clock().clone();
    let run = execute(&mut p, &clock, &spec, Bytes::from(payload.flat().clone())).unwrap();
    assert_eq!(run.edges.len(), 3);
    for edge in &run.edges {
        assert_eq!(
            fnv1a(&edge.received),
            payload.checksum(),
            "edge {} -> {} corrupted the payload",
            edge.from,
            edge.to
        );
    }
    assert!(run.total_latency_ns > 0);
}

#[test]
fn fanin_collects_at_one_target() {
    let (bed, mut p) = plane();
    p.deploy(0, "s1", bundle("s1", guest::producer()), "produce", false).unwrap();
    p.deploy(0, "s2", bundle("s2", guest::producer()), "produce", false).unwrap();
    p.deploy(1, "sink", bundle("sink", guest::consumer()), "consume", true).unwrap();
    let spec = WorkflowSpec {
        name: "fanin".into(),
        tenant: "test".into(),
        pattern: Pattern::FanIn {
            sources: vec!["s1".into(), "s2".into()],
            target: "sink".into(),
        },
    };
    let payload = Bytes::from(vec![0xEE; 200_000]);
    let clock = bed.clock().clone();
    let run = execute(&mut p, &clock, &spec, payload.clone()).unwrap();
    assert_eq!(run.edges.len(), 2);
    assert!(run.edges.iter().all(|e| e.received == payload));
}

#[test]
fn large_payload_network_integrity() {
    // 64 MB through the hose, byte-for-byte.
    let (_bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
    let payload = Payload::synthetic(PayloadKind::ImageFrame, 5, 64_000_000);
    let received = p.transfer_edge("a", "b", payload.flat()).unwrap();
    assert_eq!(fnv1a(&received), payload.checksum());
}

#[test]
fn repeated_edges_accumulate_monotonic_clock() {
    let (bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy(0, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
    let payload = Bytes::from(vec![1u8; 100_000]);
    let mut last = bed.clock().now();
    for _ in 0..5 {
        p.transfer_edge("a", "b", &payload).unwrap();
        let now = bed.clock().now();
        assert!(now > last);
        last = now;
    }
}

#[test]
fn empty_payload_flows_through_every_mode() {
    let (_bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy_into_shared_vm("a", "u", bundle("u", guest::consumer()), "consume", true)
        .unwrap();
    p.deploy(0, "k", bundle("k", guest::consumer()), "consume", true).unwrap();
    p.deploy(1, "n", bundle("n", guest::consumer()), "consume", true).unwrap();
    for target in ["u", "k", "n"] {
        let received = p.transfer_edge("a", target, &Bytes::new()).unwrap();
        assert!(received.is_empty(), "target {target}");
    }
}

#[test]
fn mode_latency_ordering_holds_end_to_end() {
    // user < kernel < network for the same payload — Fig. 1's premise.
    let payload = Bytes::from(vec![3u8; 4_000_000]);
    let mut latencies = Vec::new();
    for mode in ["user", "kernel", "network"] {
        let (_bed, mut p) = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        match mode {
            "user" => p
                .deploy_into_shared_vm("a", "b", bundle("b", guest::consumer()), "consume", true)
                .unwrap(),
            "kernel" => p
                .deploy(0, "b", bundle("b", guest::consumer()), "consume", true)
                .unwrap(),
            _ => p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap(),
        }
        p.transfer_edge("a", "b", &payload).unwrap();
        latencies.push(p.last_breakdown().unwrap().transfer_ns);
    }
    assert!(latencies[0] < latencies[1], "user {} < kernel {}", latencies[0], latencies[1]);
    assert!(latencies[1] < latencies[2], "kernel {} < network {}", latencies[1], latencies[2]);
}
