//! End-to-end workflow tests spanning the whole stack: platform →
//! Roadrunner plane → shims → Wasm guests → virtual kernel.

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, Mode, RoadrunnerPlane, ShimConfig};
use roadrunner_platform::{
    critical_path_ns, execute, execute_concurrent, FunctionBundle, WorkflowDag, WorkflowSpec,
};
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_serial::raw::fnv1a;
use roadrunner_vkernel::{SchedResources, Testbed};
use roadrunner_wasm::encode;

fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("e2e")
            .with_tenant("test"),
    )
}

fn plane() -> (Arc<Testbed>, RoadrunnerPlane) {
    let bed = Arc::new(Testbed::paper());
    let plane = RoadrunnerPlane::new(
        Arc::clone(&bed),
        ShimConfig::default().with_load_costs(false),
    );
    (bed, plane)
}

#[test]
fn three_stage_chain_across_all_modes() {
    // a and r share a VM (user space), r -> s is kernel space,
    // s -> b crosses nodes (network): one chain exercising every mode.
    let (bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy_into_shared_vm("a", "r", bundle("r", guest::relay()), "relay", false).unwrap();
    p.deploy(0, "s", bundle("s", guest::relay()), "relay", false).unwrap();
    p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();

    assert_eq!(p.mode_of("a", "r").unwrap(), Mode::UserSpace);
    assert_eq!(p.mode_of("r", "s").unwrap(), Mode::KernelSpace);
    assert_eq!(p.mode_of("s", "b").unwrap(), Mode::Network);

    let payload = Payload::synthetic(PayloadKind::SensorRecords, 21, 3_000_000);
    let spec = WorkflowSpec::sequence(
        "e2e",
        "test",
        ["a", "r", "s", "b"].map(str::to_owned),
    );
    let clock = bed.clock().clone();
    let run = execute(&mut p, &clock, &spec, payload.flat().clone()).unwrap();
    assert_eq!(run.edges.len(), 3);
    for edge in &run.edges {
        assert_eq!(
            fnv1a(&edge.received),
            payload.checksum(),
            "edge {} -> {} corrupted the payload",
            edge.from,
            edge.to
        );
    }
    assert!(run.total_latency_ns > 0);
}

#[test]
fn fanin_collects_at_one_target() {
    let (bed, mut p) = plane();
    p.deploy(0, "s1", bundle("s1", guest::producer()), "produce", false).unwrap();
    p.deploy(0, "s2", bundle("s2", guest::producer()), "produce", false).unwrap();
    p.deploy(1, "sink", bundle("sink", guest::consumer()), "consume", true).unwrap();
    let spec = WorkflowSpec::fan_in(
        "fanin",
        "test",
        ["s1".to_owned(), "s2".to_owned()],
        "sink",
    );
    let payload = Bytes::from(vec![0xEE; 200_000]);
    let clock = bed.clock().clone();
    let run = execute(&mut p, &clock, &spec, payload.clone()).unwrap();
    assert_eq!(run.edges.len(), 2);
    assert!(run.edges.iter().all(|e| e.received == payload));
}

#[test]
fn large_payload_network_integrity() {
    // 64 MB through the hose, byte-for-byte.
    let (_bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
    let payload = Payload::synthetic(PayloadKind::ImageFrame, 5, 64_000_000);
    let received = p.transfer_edge("a", "b", payload.flat()).unwrap();
    assert_eq!(fnv1a(&received), payload.checksum());
}

#[test]
fn repeated_edges_accumulate_monotonic_clock() {
    let (bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy(0, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
    let payload = Bytes::from(vec![1u8; 100_000]);
    let mut last = bed.clock().now();
    for _ in 0..5 {
        p.transfer_edge("a", "b", &payload).unwrap();
        let now = bed.clock().now();
        assert!(now > last);
        last = now;
    }
}

#[test]
fn empty_payload_flows_through_every_mode() {
    let (_bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy_into_shared_vm("a", "u", bundle("u", guest::consumer()), "consume", true)
        .unwrap();
    p.deploy(0, "k", bundle("k", guest::consumer()), "consume", true).unwrap();
    p.deploy(1, "n", bundle("n", guest::consumer()), "consume", true).unwrap();
    for target in ["u", "k", "n"] {
        let received = p.transfer_edge("a", target, &Bytes::new()).unwrap();
        assert!(received.is_empty(), "target {target}");
    }
}

#[test]
fn diamond_dag_overlaps_branches_within_critical_path_bound() {
    // The ISSUE-2 acceptance shape: a → {b, c} → d over the real
    // Roadrunner plane under CostModel::paper_testbed. The concurrent
    // engine must land strictly below the serialized edge sum (the two
    // branches overlap on the node's four cores) but no lower than the
    // DAG's critical path.
    let (bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy(0, "b", bundle("b", guest::relay()), "relay", false).unwrap();
    p.deploy(0, "c", bundle("c", guest::relay()), "relay", false).unwrap();
    p.deploy(0, "d", bundle("d", guest::consumer()), "consume", true).unwrap();

    let mut dag = WorkflowDag::new();
    dag.add_edge("a", "b").add_edge("a", "c").add_edge("b", "d").add_edge("c", "d");
    let spec = WorkflowSpec::from_dag("diamond", "test", dag);

    let payload = Payload::synthetic(PayloadKind::Text, 17, 2_000_000);
    let clock = bed.clock().clone();
    let mut resources = SchedResources::for_testbed(&bed);
    let run =
        execute_concurrent(&mut p, &clock, &spec, payload.flat().clone(), &mut resources)
            .unwrap();

    assert_eq!(run.edges.len(), 4);
    for edge in &run.edges {
        assert_eq!(
            fnv1a(&edge.received),
            payload.checksum(),
            "edge {} -> {} corrupted the payload",
            edge.from,
            edge.to
        );
    }
    let serialized = run.serialized_ns();
    let critical = critical_path_ns(&spec, &run).unwrap();
    assert!(
        run.total_latency_ns < serialized,
        "branches did not overlap: makespan {} >= serialized {serialized}",
        run.total_latency_ns
    );
    assert!(
        run.total_latency_ns >= critical,
        "makespan {} undercut the critical path {critical}",
        run.total_latency_ns
    );
    // Both first-level branches start together — genuine concurrency.
    assert_eq!(run.edge("a", "b").unwrap().start_ns, run.edge("a", "c").unwrap().start_ns);
}

#[test]
fn mixed_node_diamond_contends_on_the_shared_link() {
    // Same diamond, but the gather stage lives on node 1: b→d and c→d
    // cross the WAN and must queue on the capacity-1 link, so the
    // makespan exceeds the critical path while still beating the fully
    // serialized schedule.
    let (bed, mut p) = plane();
    p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
    p.deploy(0, "b", bundle("b", guest::relay()), "relay", false).unwrap();
    p.deploy(0, "c", bundle("c", guest::relay()), "relay", false).unwrap();
    p.deploy(1, "d", bundle("d", guest::consumer()), "consume", true).unwrap();

    let mut dag = WorkflowDag::new();
    dag.add_edge("a", "b").add_edge("a", "c").add_edge("b", "d").add_edge("c", "d");
    let spec = WorkflowSpec::from_dag("diamond-wan", "test", dag);

    let payload = Payload::synthetic(PayloadKind::Text, 23, 4_000_000);
    let clock = bed.clock().clone();
    let mut resources = SchedResources::for_testbed(&bed);
    let run =
        execute_concurrent(&mut p, &clock, &spec, payload.flat().clone(), &mut resources)
            .unwrap();

    let critical = critical_path_ns(&spec, &run).unwrap();
    assert!(run.total_latency_ns < run.serialized_ns());
    assert!(
        run.total_latency_ns > critical,
        "link contention should push makespan {} past the critical path {critical}",
        run.total_latency_ns
    );
    // The two wire transfers cannot overlap on one link.
    let wire = bed.wan().wire_ns(payload.flat().len());
    assert!(run.total_latency_ns >= 2 * wire);
}

#[test]
fn mode_latency_ordering_holds_end_to_end() {
    // user < kernel < network for the same payload — Fig. 1's premise.
    let payload = Bytes::from(vec![3u8; 4_000_000]);
    let mut latencies = Vec::new();
    for mode in ["user", "kernel", "network"] {
        let (_bed, mut p) = plane();
        p.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        match mode {
            "user" => p
                .deploy_into_shared_vm("a", "b", bundle("b", guest::consumer()), "consume", true)
                .unwrap(),
            "kernel" => p
                .deploy(0, "b", bundle("b", guest::consumer()), "consume", true)
                .unwrap(),
            _ => p.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap(),
        }
        p.transfer_edge("a", "b", &payload).unwrap();
        latencies.push(p.last_breakdown().unwrap().transfer_ns);
    }
    assert!(latencies[0] < latencies[1], "user {} < kernel {}", latencies[0], latencies[1]);
    assert!(latencies[1] < latencies[2], "kernel {} < network {}", latencies[1], latencies[2]);
}
