//! Property-based integration tests: payload integrity and cost-model
//! invariants across randomized payload shapes, sizes and modes.

use std::sync::Arc;

use proptest::prelude::*;
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_baselines::{RuncPair, WasmedgePair};
use roadrunner_platform::FunctionBundle;
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_vkernel::Testbed;
use roadrunner_wasm::encode;

fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("prop")
            .with_tenant("t"),
    )
}

fn arb_kind() -> impl Strategy<Value = PayloadKind> {
    prop_oneof![
        Just(PayloadKind::Text),
        Just(PayloadKind::SensorRecords),
        Just(PayloadKind::ImageFrame),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn roadrunner_modes_preserve_any_payload(
        kind in arb_kind(),
        seed in any::<u64>(),
        size in 1usize..300_000,
        colocate in 0u8..3,
    ) {
        let payload = Payload::synthetic(kind, seed, size);
        let bed = Arc::new(Testbed::paper());
        let mut plane = RoadrunnerPlane::new(
            Arc::clone(&bed),
            ShimConfig::default().with_load_costs(false),
        );
        plane.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
        match colocate {
            0 => plane
                .deploy_into_shared_vm("a", "b", bundle("b", guest::consumer()), "consume", true)
                .unwrap(),
            1 => plane.deploy(0, "b", bundle("b", guest::consumer()), "consume", true).unwrap(),
            _ => plane.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap(),
        }
        let received = plane
            .transfer_edge("a", "b", payload.flat())
            .unwrap();
        prop_assert_eq!(&received[..], &payload.flat()[..]);
        // Latency is charged and positive for non-trivial payloads.
        let bd = plane.last_breakdown().unwrap();
        prop_assert!(bd.transfer_ns > 0);
    }

    #[test]
    fn baselines_reconstruct_any_payload(
        kind in arb_kind(),
        seed in any::<u64>(),
        size in 1usize..120_000,
        inter in any::<bool>(),
    ) {
        let payload = Payload::synthetic(kind, seed, size);
        let node_b = if inter { 1 } else { 0 };

        let bed = Arc::new(Testbed::paper());
        let mut runc = RuncPair::establish(Arc::clone(&bed), 0, node_b);
        let out = runc.transfer(&payload).unwrap();
        prop_assert_eq!(&out.received_value, payload.value());

        let bed = Arc::new(Testbed::paper());
        let mut wedge = WasmedgePair::establish(Arc::clone(&bed), 0, node_b);
        let out = wedge.transfer(&payload).unwrap();
        prop_assert_eq!(&out.received_value, payload.value());
    }

    #[test]
    fn latency_grows_with_payload_size(
        seed in any::<u64>(),
        base in 50_000usize..200_000,
    ) {
        let small = Payload::synthetic(PayloadKind::Text, seed, base);
        let big = Payload::synthetic(PayloadKind::Text, seed, base * 8);
        let measure = |p: &Payload| {
            let bed = Arc::new(Testbed::paper());
            let mut plane = RoadrunnerPlane::new(
                Arc::clone(&bed),
                ShimConfig::default().with_load_costs(false),
            );
            plane.deploy(0, "a", bundle("a", guest::producer()), "produce", false).unwrap();
            plane.deploy(1, "b", bundle("b", guest::consumer()), "consume", true).unwrap();
            plane.transfer_edge("a", "b", p.flat()).unwrap();
            plane.last_breakdown().unwrap().transfer_ns
        };
        prop_assert!(measure(&big) > measure(&small));
    }
}
