//! Workspace-wiring smoke test: every re-export in `src/suite.rs` must
//! resolve, and the core types must be constructible and usable through
//! the umbrella import root alone. If a crate falls out of the workspace
//! graph or a re-export is renamed, this is the test that breaks first.

use std::sync::Arc;

use bytes::Bytes;
use roadrunner_suite::core::{guest, Mode, RoadrunnerPlane, ShimConfig};
use roadrunner_suite::platform::FunctionBundle;
use roadrunner_suite::vkernel::Testbed;
use roadrunner_suite::wasm::{decode, encode};

/// A `Testbed`, a `RoadrunnerPlane` and guest modules built purely from
/// `roadrunner_suite::*` paths carry a payload end to end.
#[test]
fn plane_and_testbed_resolve_through_suite() {
    let bed = Arc::new(Testbed::paper());
    let mut plane = RoadrunnerPlane::new(Arc::clone(&bed), ShimConfig::default());

    let wrap = |name: &str, module| {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("smoke")
                .with_tenant("suite"),
        )
    };
    plane
        .deploy(0, "src", wrap("src", guest::producer()), "produce", false)
        .expect("deploy producer");
    plane
        .deploy(1, "dst", wrap("dst", guest::consumer()), "consume", true)
        .expect("deploy consumer");
    assert_eq!(plane.mode_of("src", "dst").expect("edge exists"), Mode::Network);

    let payload = Bytes::from_static(b"suite smoke payload");
    let received = plane
        .transfer_edge("src", "dst", &payload)
        .expect("transfer succeeds");
    assert_eq!(&received[..], &payload[..]);
}

/// A module built through the umbrella's `wasm` re-export encodes and
/// decodes bit-exactly.
#[test]
fn wasm_module_round_trips_through_suite() {
    let module = guest::hello_world();
    let bytes = encode::encode(&module);
    let decoded = decode::decode(&bytes).expect("decodes");
    assert_eq!(decoded, module);
    assert_eq!(encode::encode(&decoded), bytes);
}

/// Every suite alias is usable as a module path (compile-time check that
/// the full re-export list resolves), and the serial/http/wasi/baselines
/// corners each do one trivial operation.
#[test]
fn every_suite_alias_resolves() {
    // serial: a value survives its text codec.
    let value = roadrunner_suite::serial::Value::from(vec![1u8, 2, 3]);
    let text = roadrunner_suite::serial::text::to_text(&value);
    assert_eq!(
        roadrunner_suite::serial::text::from_text(&text).expect("parses"),
        value
    );

    // http: a request frames and parses.
    let raw = roadrunner_suite::http::Request::post("/fn", Bytes::from_static(b"x")).to_bytes();
    assert!(!raw.is_empty());

    // wasi: a context over a fresh sandbox holds a file.
    let bed = Testbed::paper();
    let mut ctx = roadrunner_suite::wasi::WasiCtx::new(bed.node(0).sandbox("smoke"));
    ctx.put_file("/smoke", vec![7u8; 8]);

    // baselines: the cold-start comparison runs through the suite alias.
    let sample = roadrunner_suite::baselines::coldstart::container_hello(bed.cost());
    assert!(sample.cold_ns > 0);
}
