//! Isolation and failure-injection tests: the paper's security story
//! (§3.1, §7) must hold mechanically — trust validation, pre-registered
//! regions, bounds checks, fail-stop traps.

use std::sync::Arc;

use roadrunner::{guest, MemoryRegion, RoadrunnerError, RoadrunnerPlane, Shim, ShimConfig};
use roadrunner_platform::FunctionBundle;
use roadrunner_vkernel::Testbed;
use roadrunner_wasm::encode;
use roadrunner_wasm::types::Value;

fn bundle_for(workflow: &str, tenant: &str, name: &str) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&guest::consumer()))
            .with_workflow(workflow)
            .with_tenant(tenant),
    )
}

#[test]
fn cross_tenant_colocation_is_rejected() {
    let bed = Arc::new(Testbed::paper());
    let mut plane = RoadrunnerPlane::new(Arc::clone(&bed), ShimConfig::default());
    plane
        .deploy(0, "a", bundle_for("wf", "tenant-1", "a"), "consume", true)
        .unwrap();
    // Same workflow, different tenant: refused.
    let err = plane
        .deploy_into_shared_vm("a", "evil", bundle_for("wf", "tenant-2", "evil"), "consume", true)
        .unwrap_err();
    assert!(matches!(err, RoadrunnerError::TrustViolation(_)));
    // Different workflow, same tenant: refused.
    let err = plane
        .deploy_into_shared_vm("a", "other", bundle_for("wf2", "tenant-1", "other"), "consume", true)
        .unwrap_err();
    assert!(matches!(err, RoadrunnerError::TrustViolation(_)));
}

#[test]
fn shim_cannot_read_unregistered_memory() {
    let bed = Testbed::paper();
    let mut shim = Shim::new("iso", bed.node(0), ShimConfig::default().with_load_costs(false));
    shim.load_module("f", bundle_for("wf", "t", "f")).unwrap();
    // Nothing registered: all reads refused, even in-bounds ones.
    for region in [MemoryRegion::new(0, 1), MemoryRegion::new(4096, 64)] {
        assert!(matches!(
            shim.read_memory_host("f", region),
            Err(RoadrunnerError::AccessViolation(_))
        ));
    }
}

#[test]
fn shim_access_is_bounded_to_the_registered_window() {
    let bed = Testbed::paper();
    let mut shim = Shim::new("iso", bed.node(0), ShimConfig::default().with_load_costs(false));
    shim.load_module("f", bundle_for("wf", "t", "f")).unwrap();
    let region = shim.write_memory_host("f", &[9u8; 128]).unwrap();
    // Within: fine. One byte beyond: refused.
    shim.read_memory_host("f", region).unwrap();
    let beyond = MemoryRegion::new(region.addr, region.len + 1);
    assert!(matches!(
        shim.read_memory_host("f", beyond),
        Err(RoadrunnerError::AccessViolation(_))
    ));
    let before = MemoryRegion::new(region.addr - 1, 2);
    assert!(matches!(
        shim.read_memory_host("f", before),
        Err(RoadrunnerError::AccessViolation(_))
    ));
}

#[test]
fn guest_trap_is_fail_stop_not_corruption() {
    let bed = Testbed::paper();
    let mut shim = Shim::new("iso", bed.node(0), ShimConfig::default().with_load_costs(false));
    shim.load_module("f", bundle_for("wf", "t", "f")).unwrap();
    let region = shim.write_memory_host("f", b"survives").unwrap();
    // Wild-pointer consume traps…
    let err = shim
        .invoke("f", "consume", &[Value::I32(i32::MAX), Value::I32(64)])
        .unwrap_err();
    assert!(matches!(err, RoadrunnerError::Trap(_)));
    // …and the module remains usable with its data intact.
    assert_eq!(&shim.peek_memory("f", region).unwrap()[..], b"survives");
    let ack = shim
        .invoke(
            "f",
            "consume",
            &[Value::I32(region.addr as i32), Value::I32(region.len as i32)],
        )
        .unwrap();
    assert!(ack[0].as_i32().is_some());
}

#[test]
fn oversized_write_is_refused_before_touching_memory() {
    let bed = Testbed::paper();
    let config = ShimConfig::default()
        .with_load_costs(false)
        .with_engine_limits(roadrunner_wasm::EngineLimits::default().with_max_memory_pages(32));
    let mut shim = Shim::new("iso", bed.node(0), config);
    shim.load_module("f", bundle_for("wf", "t", "f")).unwrap();
    // 32 pages = 2 MiB cap; a 4 MiB inbox cannot be allocated. The guest
    // allocator traps (grow fails), which surfaces as a trap error.
    let err = shim.write_memory_host("f", &vec![0u8; 4 << 20]).unwrap_err();
    assert!(matches!(err, RoadrunnerError::Trap(_)));
}

#[test]
fn streaming_writes_cannot_escape_their_inbox() {
    let bed = Testbed::paper();
    let mut shim = Shim::new("iso", bed.node(0), ShimConfig::default().with_load_costs(false));
    shim.load_module("f", bundle_for("wf", "t", "f")).unwrap();
    let inbox = shim.allocate_inbox("f", 64).unwrap();
    shim.write_into_inbox("f", inbox, 0, &[1u8; 64]).unwrap();
    let err = shim.write_into_inbox("f", inbox, 1, &[1u8; 64]).unwrap_err();
    assert!(matches!(err, RoadrunnerError::AccessViolation(_)));
    let err = shim.write_into_inbox("f", inbox, 64, &[1]).unwrap_err();
    assert!(matches!(err, RoadrunnerError::AccessViolation(_)));
}

#[test]
fn deallocated_regions_lose_host_access() {
    let bed = Testbed::paper();
    let mut shim = Shim::new("iso", bed.node(0), ShimConfig::default().with_load_costs(false));
    shim.load_module("f", bundle_for("wf", "t", "f")).unwrap();
    let region = shim.write_memory_host("f", &[7u8; 32]).unwrap();
    shim.deallocate("f", region).unwrap();
    assert!(matches!(
        shim.read_memory_host("f", region),
        Err(RoadrunnerError::AccessViolation(_))
    ));
}
