//! Vendored, dependency-free stand-in for the crates.io [`proptest`]
//! crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This reimplementation keeps the same module paths and macro
//! names for the surface the workspace uses — [`Strategy`] with
//! `prop_map` / `prop_recursive` / `boxed`, [`Just`], [`any`], integer and
//! float range strategies, tuple strategies, a regex-subset string
//! strategy, [`collection::vec`], `prop_oneof!`, `proptest!`,
//! `prop_assert!` and `prop_assert_eq!` — so test code is written exactly
//! as against the real crate.
//!
//! Differences from the real crate: generation is **deterministic**
//! (seeded from the test's module path, so failures reproduce across
//! runs) and failing cases are **not shrunk** — the failing input is
//! reported as generated.
//!
//! [`proptest`]: https://docs.rs/proptest
//! [`Strategy`]: strategy::Strategy
//! [`Just`]: strategy::Just
//! [`any`]: arbitrary::any

/// Everything a property test needs in scope, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Random generation and the per-test case runner.
pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; 64 keeps `cargo test` quick while
            // still exercising the generators broadly.
            Config { cases: 64 }
        }
    }

    /// A failed property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Drop guard used by `proptest!`: when the test body panics (rather
    /// than failing a `prop_assert!`), unwinding drops this guard and the
    /// generated inputs of the dying case are printed to stderr. On the
    /// success path the macro `mem::forget`s it.
    pub struct ReportInputsOnPanic<'a> {
        case: u32,
        inputs: &'a [String],
    }

    impl<'a> ReportInputsOnPanic<'a> {
        /// Guards the given case's formatted inputs.
        pub fn new(case: u32, inputs: &'a [String]) -> Self {
            ReportInputsOnPanic { case, inputs }
        }
    }

    impl Drop for ReportInputsOnPanic<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest case {} panicked with inputs [{}]",
                    self.case,
                    self.inputs.join(", ")
                );
            }
        }
    }

    /// Deterministic SplitMix64 generator: seeded from the test name so
    /// every run regenerates the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test (pass `module_path!() :: test_name`).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-spread seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "below(0)");
            // Multiply-shift bounded sampling (Lemire); bias is
            // negligible for test generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike the real crate there is no value tree and no shrinking:
    /// `generate` directly yields a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `branch` wraps an inner strategy into one more level of
        /// nesting. Nesting is structurally bounded by `depth`; the
        /// `_desired_size` / `_expected_branch_size` tuning knobs of the
        /// real crate are accepted and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                // Each level flips between bottoming out at a leaf and
                // recursing one level deeper, so sizes stay spread.
                current = Union::new(vec![leaf.clone(), branch(current).boxed()]).boxed();
            }
            current
        }

        /// Type-erases the strategy so heterogeneous strategies of one
        /// value type can be mixed (e.g. by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cheaply cloneable, type-erased strategy.
    pub struct BoxedStrategy<V> {
        inner: Arc<dyn DynStrategy<V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate_dyn(rng)
        }
    }

    /// Uniform (or weighted) choice between strategies of one value
    /// type. Built by `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Uniform choice over `options`.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted choice over `options`; weights must not all be zero.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! of zero strategies");
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total_weight);
            for (weight, option) in &self.options {
                if pick < *weight as u64 {
                    return option.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $ty
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            // The multiply-add can round up to the exclusive end bound
            // (e.g. when the span is near the float spacing); clamp to
            // the largest representable value below it.
            if v >= self.end {
                self.end.next_down()
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() as f32 * (self.end - self.start);
            if v >= self.end {
                self.end.next_down()
            } else {
                v
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` — full-domain strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// A strategy generating arbitrary values of `T` over its whole
    /// domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($ty:ty),+) => {$(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            // Bias toward ASCII, occasionally emit a higher code point.
            if rng.below(4) == 0 {
                char::from_u32(0x100 + rng.below(0xFF00) as u32).unwrap_or('\u{fffd}')
            } else {
                (0x20 + rng.below(0x5f) as u8) as char
            }
        }
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size constraint for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Regex-subset string strategies: `"[a-z]{1,6}"` as a `Strategy`.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// One parsed pattern atom: a set of candidate chars plus a
    /// repetition range.
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parses the regex subset used in strategies: sequences of literal
    /// characters and `[...]` classes (with `a-z` ranges), each
    /// optionally followed by `{n}`, `{m,n}`, `?`, `*` or `+`
    /// (unbounded repetitions are capped at 8).
    fn parse(pattern: &str) -> Vec<Atom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            None => panic!("unterminated [class] in pattern {pattern:?}"),
                            Some(']') => break,
                            Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                let start = prev.take().unwrap();
                                let end = chars.next().unwrap();
                                // `start` was already pushed as a literal;
                                // extend with the rest of the range.
                                let (lo, hi) = (start as u32 + 1, end as u32);
                                for cp in lo..=hi {
                                    if let Some(ch) = char::from_u32(cp) {
                                        set.push(ch);
                                    }
                                }
                            }
                            Some('\\') => {
                                let esc = chars
                                    .next()
                                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                                set.push(esc);
                                prev = Some(esc);
                            }
                            Some(ch) => {
                                set.push(ch);
                                prev = Some(ch);
                            }
                        }
                    }
                    assert!(!set.is_empty(), "empty [class] in pattern {pattern:?}");
                    set
                }
                '\\' => vec![chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"))],
                '.' => (' '..='~').collect(),
                other => vec![other],
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for ch in chars.by_ref() {
                        if ch == '}' {
                            break;
                        }
                        spec.push(ch);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} bound"),
                            hi.trim().parse().expect("bad {m,n} bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad {n} bound");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted repetition in pattern {pattern:?}");
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse(self) {
                let count =
                    atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..count {
                    out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
                }
            }
            out
        }
    }
}

/// Runs property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
///
/// An optional `#![proptest_config(...)]` first line sets the case count.
/// Bodies may use `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
/// which abort only the current case with a descriptive panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(
                        let __generated =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                        __inputs.push(format!(
                            "{} = {:?}",
                            stringify!($arg),
                            &__generated
                        ));
                        let $arg = __generated;
                    )+
                    // If the body panics outright (unwrap, slice OOB, …)
                    // the guard still reports the generated inputs.
                    let __guard =
                        $crate::test_runner::ReportInputsOnPanic::new(case + 1, &__inputs);
                    let outcome = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    ::core::mem::forget(__guard);
                    outcome
                };
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}/{} with inputs [{}]: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        __inputs.join(", "),
                        err
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Case-local assertion: fails the current generated case (with its
/// message) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Case-local equality assertion; prints both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Case-local inequality assertion; prints both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Chooses between strategies of one value type, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::test_runner::TestRng::for_test("regex");
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        let s = Strategy::generate(&"[a-zA-Z0-9 ☃]{0,16}", &mut rng);
        assert!(s.chars().count() <= 16);
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum V {
            Leaf(u8),
            List(Vec<V>),
        }
        fn depth(v: &V) -> usize {
            match v {
                V::Leaf(_) => 0,
                V::List(vs) => 1 + vs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>().prop_map(V::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(V::List)
        });
        let mut rng = crate::test_runner::TestRng::for_test("recursive");
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(depth(&v) <= 3, "{v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u8..10, b in any::<bool>(), s in "[0-9]{2}") {
            prop_assert!(a < 10);
            prop_assert_eq!(s.len(), 2);
            let _ = b;
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in prop_oneof![1 => Just(1u8), 1 => Just(2u8), 3 => Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }
    }
}
