//! Vendored, dependency-free stand-in for the crates.io [`parking_lot`]
//! crate, offering the same poison-free locking API over `std::sync`
//! primitives: `lock()` / `read()` / `write()` return guards directly
//! instead of `Result`s. A poisoned std lock (a panic while held) is
//! recovered into its inner value, matching `parking_lot`'s behaviour of
//! not propagating poison.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read()` / `write()` never return poison
/// errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
