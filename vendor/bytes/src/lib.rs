//! Vendored, dependency-free stand-in for the crates.io [`bytes`] crate.
//!
//! The container this workspace builds in has no network access, so the
//! real crate cannot be fetched; this module reimplements the small API
//! surface the workspace actually uses with the same semantics:
//!
//! * [`Bytes`] is a cheaply cloneable, reference-counted view into an
//!   immutable byte buffer. `clone`, [`Bytes::slice`] and
//!   [`Bytes::split_to`] share storage — they never copy, which the
//!   zero-copy tests in `roadrunner-vkernel` assert via pointer identity.
//! * [`BytesMut`] is a growable buffer that can be frozen into [`Bytes`]
//!   without copying.
//!
//! [`bytes`]: https://docs.rs/bytes

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Backing storage of a [`Bytes`]: either a `'static` slice (no
/// allocation, no refcount) or a shared heap allocation.
#[derive(Clone)]
enum Storage {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Storage {
    fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Static(s) => s,
            Storage::Shared(v) => v.as_slice(),
        }
    }
}

/// A cheaply cloneable view into an immutable, reference-counted byte
/// buffer. Clones and sub-slices share the same allocation.
#[derive(Clone)]
pub struct Bytes {
    storage: Storage,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// The empty buffer. Does not allocate.
    pub const fn new() -> Self {
        Bytes {
            storage: Storage::Static(&[]),
            offset: 0,
            len: 0,
        }
    }

    /// Wraps a `'static` slice without copying or allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            storage: Storage::Static(bytes),
            offset: 0,
            len: bytes.len(),
        }
    }

    /// Copies `data` into a fresh owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-view sharing this buffer's storage. Zero-copy.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted, matching the
    /// real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range out of bounds: {start}..{end} of {}",
            self.len
        );
        Bytes {
            storage: self.storage.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Splits off and returns the first `at` bytes, leaving the rest in
    /// `self`. Both halves share storage. Zero-copy.
    ///
    /// # Panics
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len, "split_to out of bounds: {at} of {}", self.len);
        let head = Bytes {
            storage: self.storage.clone(),
            offset: self.offset,
            len: at,
        };
        self.offset += at;
        self.len -= at;
        head
    }

    /// Splits off and returns the bytes after `at`, truncating `self` to
    /// the first `at` bytes. Both halves share storage. Zero-copy.
    ///
    /// # Panics
    /// Panics when `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len, "split_off out of bounds: {at} of {}", self.len);
        let tail = Bytes {
            storage: self.storage.clone(),
            offset: self.offset + at,
            len: self.len - at,
        };
        self.len = at;
        tail
    }

    /// Advances the start of the view by `cnt` bytes.
    ///
    /// # Panics
    /// Panics when `cnt > self.len()`.
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance out of bounds: {cnt} of {}", self.len);
        self.offset += cnt;
        self.len -= cnt;
    }

    /// Shortens the view to `len` bytes; no-op when already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.storage.as_slice()[self.offset..self.offset + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            storage: Storage::Shared(Arc::new(v)),
            offset: 0,
            len,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable, uniquely owned byte buffer that can be frozen into
/// [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// New empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.inner.extend_from_slice(data);
    }

    /// Alias for [`BytesMut::extend_from_slice`], matching the `BufMut`
    /// method of the real crate.
    pub fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shortens the buffer to `len` bytes; no-op when already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// The real crate shares storage here; this stand-in copies the tail,
    /// which is semantically identical (both halves are uniquely owned).
    ///
    /// # Panics
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.inner.len(),
            "split_to out of bounds: {at} of {}",
            self.inner.len()
        );
        let tail = self.inner.split_off(at);
        let head = std::mem::replace(&mut self.inner, tail);
        BytesMut { inner: head }
    }

    /// Converts the buffer into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.inner.len())
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { inner: s.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8; 64]);
        let ptr = b.as_ptr();
        let c = b.clone();
        assert_eq!(c.as_ptr(), ptr);
        let s = b.slice(16..48);
        assert_eq!(s.as_ptr(), unsafe { ptr.add(16) });
        assert_eq!(s.len(), 32);
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(vec![7u8; 10]);
        let ptr = b.as_ptr();
        let head = b.split_to(4);
        assert_eq!(head.len(), 4);
        assert_eq!(head.as_ptr(), ptr);
        assert_eq!(b.len(), 6);
        assert_eq!(b.as_ptr(), unsafe { ptr.add(4) });
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abcdefgh");
        let ptr = m.as_ptr();
        let b = m.freeze();
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(&b[..], b"abcdefgh");
    }

    #[test]
    fn equality_and_advance() {
        let mut b = Bytes::from_static(b"hello world");
        b.advance(6);
        assert_eq!(&b[..], b"world");
        assert_eq!(b, Bytes::copy_from_slice(b"world"));
    }
}
