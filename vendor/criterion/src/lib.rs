//! Vendored, dependency-free stand-in for the crates.io [`criterion`]
//! crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This harness keeps the same API shape — [`Criterion`],
//! benchmark groups, [`Throughput`], [`BenchmarkId`], `criterion_group!`,
//! `criterion_main!` and [`black_box`] — but replaces the statistical
//! machinery with a simple mean over `sample_size` timed iterations
//! (after one warm-up), printed as a single line per benchmark:
//!
//! ```text
//! group/name            time:  123.4 µs/iter   thrpt:  8.1 GiB/s
//! ```
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Work-per-iteration declaration; turns measured time into a
/// throughput column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in binary units).
    Bytes(u64),
    /// Bytes processed per iteration (reported in decimal units).
    BytesDecimal(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter,
/// printed as `name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id for `function_name` benchmarked at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (plus one
    /// untimed warm-up) and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

fn report(label: &str, mean: Duration, throughput: Option<Throughput>) {
    let time = if mean.as_secs_f64() >= 1e-3 {
        format!("{:.3} ms/iter", mean.as_secs_f64() * 1e3)
    } else if mean.as_secs_f64() >= 1e-6 {
        format!("{:.1} µs/iter", mean.as_secs_f64() * 1e6)
    } else {
        format!("{} ns/iter", mean.as_nanos())
    };
    let thrpt = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "   thrpt: {:.2} GiB/s",
                n as f64 / mean.as_secs_f64() / (1u64 << 30) as f64
            )
        }
        Some(Throughput::BytesDecimal(n)) => {
            format!("   thrpt: {:.2} GB/s", n as f64 / mean.as_secs_f64() / 1e9)
        }
        Some(Throughput::Elements(n)) => {
            format!("   thrpt: {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!("{label:<40} time: {time}{thrpt}");
}

/// A named set of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.into()),
            bencher.mean,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.into()),
            bencher.mean,
            self.throughput,
        );
        self
    }

    /// Ends the group. (No summary statistics in this stand-in.)
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report(&id.into().to_string(), bencher.mean, None);
        self
    }
}

/// Defines a benchmark group function, with or without a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` for a benchmark binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("1k", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn configured_harness_runs() {
        configured();
    }
}
