//! Traffic-data analytics fan-out (the paper's second motivating
//! scenario): one ingestion function fans 10 MB batches of structured
//! sensor records out to several co-located analytics workers — the
//! workload of Fig. 9 — using the platform's workflow engine over the
//! Roadrunner data plane.
//!
//! Run: `cargo run --example traffic_analytics`

use std::sync::Arc;

use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_platform::{execute, FunctionBundle, WorkflowSpec};
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_vkernel::{secs, Testbed};
use roadrunner_wasm::encode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bed = Arc::new(Testbed::paper());
    let mut plane = RoadrunnerPlane::new(Arc::clone(&bed), ShimConfig::default());
    let bundle = |name: &str, module| {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("traffic")
                .with_tenant("city"),
        )
    };

    // Ingest on node 0; four analytics workers co-located with it
    // (kernel-space mode) — the orchestrator's placement, not ours.
    plane.deploy(0, "ingest", bundle("ingest", guest::producer()), "produce", false)?;
    let workers: Vec<String> = (0..4).map(|i| format!("analytics-{i}")).collect();
    for w in &workers {
        plane.deploy(0, w, bundle(w, guest::consumer()), "consume", true)?;
    }

    // A 10 MB batch of packed sensor records (32-byte rows).
    let batch = Payload::synthetic(PayloadKind::SensorRecords, 99, 10_000_000);
    println!(
        "batch: {} records, {} bytes, checksum {:016x}",
        batch.value().as_list().map(|l| l.len()).unwrap_or(0),
        batch.flat().len(),
        batch.checksum(),
    );

    let spec = WorkflowSpec::fanout("traffic", "city", "ingest", workers.clone());
    let clock = bed.clock().clone();
    let run = execute(&mut plane, &clock, &spec, batch.flat().clone())?;

    println!(
        "fan-out of {} branches, total {:.4} s virtual",
        run.edges.len(),
        secs(run.total_latency_ns)
    );
    for edge in &run.edges {
        println!(
            "  {} -> {}: {:.4} s, {} bytes, intact: {}",
            edge.from,
            edge.to,
            secs(edge.latency_ns),
            edge.bytes,
            edge.received == *batch.flat(),
        );
    }
    Ok(())
}
