//! Scatter-gather over an arbitrary workflow DAG — a shape the paper
//! never measured: one ingestion function scatters a batch to four
//! workers spread across both testbed nodes, and a gather function
//! collects every worker's result. The discrete-event engine overlaps
//! the independent edges in virtual time while the shared link and each
//! node's cores serialize contended work.
//!
//! Run: `cargo run --example scatter_gather`

use std::sync::Arc;

use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_platform::{
    critical_path_ns, execute, execute_concurrent, FunctionBundle, WorkflowDag, WorkflowSpec,
};
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_vkernel::{secs, SchedResources, Testbed};
use roadrunner_wasm::encode;

fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("scatter")
            .with_tenant("city"),
    )
}

fn deploy() -> (Arc<Testbed>, RoadrunnerPlane) {
    let bed = Arc::new(Testbed::paper());
    let mut plane = RoadrunnerPlane::new(Arc::clone(&bed), ShimConfig::default());
    plane
        .deploy(0, "scatter", bundle("scatter", guest::producer()), "produce", false)
        .expect("deploy scatter");
    for i in 0..4 {
        let name = format!("worker-{i}");
        // Half the workers live on the far node — the orchestrator's
        // placement, not ours; Roadrunner adapts per edge.
        let node = i % 2;
        plane
            .deploy(node, &name, bundle(&name, guest::relay()), "relay", false)
            .expect("deploy worker");
    }
    plane
        .deploy(1, "gather", bundle("gather", guest::consumer()), "consume", true)
        .expect("deploy gather");
    (bed, plane)
}

fn spec() -> WorkflowSpec {
    let mut dag = WorkflowDag::new();
    for i in 0..4 {
        let worker = format!("worker-{i}");
        dag.add_edge("scatter", &worker);
        dag.add_edge(&worker, "gather");
    }
    WorkflowSpec::from_dag("scatter-gather", "city", dag)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = Payload::synthetic(PayloadKind::SensorRecords, 99, 10_000_000);
    println!(
        "batch: {} bytes, checksum {:016x}",
        batch.flat().len(),
        batch.checksum()
    );

    // Serial engine: every edge back to back (the paper's measurement
    // discipline).
    let (bed, mut plane) = deploy();
    let clock = bed.clock().clone();
    let serial = execute(&mut plane, &clock, &spec(), batch.flat().clone())?;

    // Concurrent engine: independent edges overlap, contended resources
    // (each node's 4 cores, the shared 700 Mbit/s link) serialize.
    let (bed, mut plane) = deploy();
    let clock = bed.clock().clone();
    let mut resources = SchedResources::for_testbed(&bed);
    let concurrent =
        execute_concurrent(&mut plane, &clock, &spec(), batch.flat().clone(), &mut resources)?;

    println!(
        "\n{} edges, {} bytes moved",
        concurrent.edges.len(),
        concurrent.total_bytes()
    );
    println!("serial engine:     {:.4} s virtual", secs(serial.total_latency_ns));
    println!("concurrent engine: {:.4} s virtual", secs(concurrent.total_latency_ns));
    println!(
        "critical path:     {:.4} s virtual",
        secs(critical_path_ns(&spec(), &concurrent)?)
    );
    println!(
        "speedup from overlap: {:.2}x",
        serial.total_latency_ns as f64 / concurrent.total_latency_ns.max(1) as f64
    );

    println!("\nper-edge schedule (start → finish, virtual seconds):");
    for edge in &concurrent.edges {
        println!(
            "  {:>9} -> {:<9} [{:.4} → {:.4}] intact: {}",
            edge.from,
            edge.to,
            secs(edge.start_ns),
            secs(edge.finish_ns),
            edge.received == *batch.flat(),
        );
    }
    Ok(())
}
