//! Side-by-side comparison of all five data paths on a 25 MB payload:
//! Roadrunner's three modes against the RunC-like and WasmEdge-like
//! baselines — a miniature of the paper's Fig. 7/8 in one run.
//!
//! Run: `cargo run --release --example mode_comparison`

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, RoadrunnerPlane, ShimConfig};
use roadrunner_baselines::{RuncPair, WasmedgePair};
use roadrunner_platform::FunctionBundle;
use roadrunner_serial::payload::{Payload, PayloadKind};
use roadrunner_vkernel::{secs, Testbed};
use roadrunner_wasm::encode;

fn bundle(name: &str, module: roadrunner_wasm::Module) -> Arc<FunctionBundle> {
    Arc::new(
        FunctionBundle::wasm(name, encode::encode(&module))
            .with_workflow("compare")
            .with_tenant("demo"),
    )
}

/// Runs one Roadrunner transfer; `colocate` picks the mode:
/// `Some(true)` = same VM, `Some(false)` = same node, `None` = remote.
fn roadrunner_run(colocate: Option<bool>, payload: &Payload) -> (String, f64) {
    let bed = Arc::new(Testbed::paper());
    let mut plane =
        RoadrunnerPlane::new(Arc::clone(&bed), ShimConfig::default().with_load_costs(false));
    plane
        .deploy(0, "a", bundle("a", guest::producer()), "produce", false)
        .expect("deploy a");
    let label = match colocate {
        Some(true) => {
            plane
                .deploy_into_shared_vm("a", "b", bundle("b", guest::consumer()), "consume", true)
                .expect("deploy b");
            "Roadrunner (user space)"
        }
        Some(false) => {
            plane
                .deploy(0, "b", bundle("b", guest::consumer()), "consume", true)
                .expect("deploy b");
            "Roadrunner (kernel space)"
        }
        None => {
            plane
                .deploy(1, "b", bundle("b", guest::consumer()), "consume", true)
                .expect("deploy b");
            "Roadrunner (network)"
        }
    };
    plane.inject("a", payload.flat()).expect("inject");
    let received = plane.transfer_edge("a", "b", &Bytes::new()).expect("transfer");
    assert_eq!(&received[..], &payload.flat()[..]);
    (label.to_owned(), secs(plane.last_breakdown().unwrap().transfer_ns))
}

fn main() {
    let payload = Payload::synthetic(PayloadKind::Text, 1, 25_000_000);
    println!("payload: 25 MB text, checksum {:016x}", payload.checksum());
    println!("{:<28}{:>14}", "system", "latency (s)");

    let mut rows = vec![
        roadrunner_run(Some(true), &payload),
        roadrunner_run(Some(false), &payload),
        roadrunner_run(None, &payload),
    ];

    let bed = Arc::new(Testbed::paper());
    let mut runc = RuncPair::establish(Arc::clone(&bed), 0, 1);
    let out = runc.transfer(&payload).expect("runc transfer");
    assert_eq!(&out.received_flat[..], &payload.flat()[..]);
    rows.push(("RunC (HTTP)".to_owned(), secs(out.latency_ns)));

    let bed = Arc::new(Testbed::paper());
    let mut wedge = WasmedgePair::establish(Arc::clone(&bed), 0, 1);
    let out = wedge.transfer(&payload).expect("wasmedge transfer");
    assert_eq!(&out.received_flat[..], &payload.flat()[..]);
    rows.push(("WasmEdge (WASI HTTP)".to_owned(), secs(out.latency_ns)));

    for (label, latency) in &rows {
        println!("{label:<28}{latency:>14.4}");
    }
    let fastest = rows.iter().map(|(_, l)| *l).fold(f64::INFINITY, f64::min);
    let slowest = rows.iter().map(|(_, l)| *l).fold(0.0, f64::max);
    println!(
        "\nspread: fastest {fastest:.4} s vs slowest {slowest:.4} s ({:.1}x)",
        slowest / fastest
    );
}
