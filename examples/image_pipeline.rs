//! ML-style image pipeline (the paper's motivating edge–cloud scenario):
//! a camera-ingest function produces frames on the edge node, a resize
//! function (real Wasm, real WASI file I/O) downscales, and the frames
//! flow to a cloud-side consumer through Roadrunner — streaming
//! ingestion → frame extraction → processing, no serialization anywhere.
//!
//! Run: `cargo run --example image_pipeline`

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::guest::{self, ResizeSpec, RESIZE_INPUT_PATH};
use roadrunner::{RoadrunnerPlane, ShimConfig};
use roadrunner_platform::FunctionBundle;
use roadrunner_vkernel::{secs, Testbed};
use roadrunner_wasi::WasiCtx;
use roadrunner_wasm::{encode, EngineLimits, Instance, Linker};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bed = Arc::new(Testbed::paper());

    // --- Stage 1: run the real resize guest over a synthetic frame.
    let spec = ResizeSpec { width: 640, height: 480 };
    let frame: Vec<u8> = (0..spec.input_len()).map(|i| (i * 7 % 256) as u8).collect();
    let mut linker = Linker::new();
    roadrunner_wasi::register::<WasiCtx>(&mut linker);
    let sandbox = bed.node(0).sandbox("resize");
    let mut wasi = WasiCtx::new(sandbox.clone());
    wasi.put_file(RESIZE_INPUT_PATH, frame);
    let mut resize = Instance::new(
        guest::resize_image(spec),
        &linker,
        EngineLimits::default(),
        Box::new(wasi),
    )?;
    resize.invoke("_start", &[])?;
    let small_frame = resize.data::<WasiCtx>().unwrap().stdout.clone();
    println!(
        "resized {}x{} -> {}x{} ({} bytes) in {:.4} s virtual ({} Wasm instructions)",
        spec.width,
        spec.height,
        spec.width / 2,
        spec.height / 2,
        small_frame.len(),
        secs(sandbox.account().user_ns()),
        resize.instr_count(),
    );

    // --- Stage 2: ship the resized frame edge → cloud via Roadrunner.
    let mut plane = RoadrunnerPlane::new(Arc::clone(&bed), ShimConfig::default());
    let bundle = |name: &str, module| {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("image-pipeline")
                .with_tenant("edge-ml"),
        )
    };
    plane.deploy(0, "extract", bundle("extract", guest::producer()), "produce", false)?;
    plane.deploy(1, "infer", bundle("infer", guest::consumer()), "consume", true)?;

    let payload = Bytes::from(small_frame);
    let delivered = plane.transfer_edge("extract", "infer", &payload)?;
    let bd = plane.last_breakdown().unwrap();
    println!(
        "delivered frame to cloud over {}: transfer {:.4} s, intact: {}",
        bd.mode,
        secs(bd.transfer_ns),
        delivered == payload
    );
    Ok(())
}
