//! Quickstart: deploy two Wasm functions on different nodes and move a
//! payload between them through Roadrunner's virtual data hose.
//!
//! Run: `cargo run --example quickstart`

use std::sync::Arc;

use bytes::Bytes;
use roadrunner::{guest, Mode, RoadrunnerPlane, ShimConfig};
use roadrunner_platform::FunctionBundle;
use roadrunner_vkernel::{secs, Testbed};
use roadrunner_wasm::encode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's two-node edge–cloud testbed (4-core nodes, shaped WAN).
    let bed = Arc::new(Testbed::paper());
    let mut plane = RoadrunnerPlane::new(Arc::clone(&bed), ShimConfig::default());

    // Functions ship as OCI-style bundles holding real Wasm binaries,
    // annotated with workflow + tenant for the trust check.
    let bundle = |name: &str, module| {
        Arc::new(
            FunctionBundle::wasm(name, encode::encode(&module))
                .with_workflow("quickstart")
                .with_tenant("demo"),
        )
    };

    // `producer` hands its output region to the shim (send_to_host);
    // `consumer` reads its input straight from linear memory.
    plane.deploy(0, "ingest", bundle("ingest", guest::producer()), "produce", false)?;
    plane.deploy(1, "process", bundle("process", guest::consumer()), "consume", true)?;
    assert_eq!(plane.mode_of("ingest", "process")?, Mode::Network);

    // Move 8 MB between the nodes — serialization-free, near-zero copy.
    let payload = Bytes::from(vec![0xAB; 8 << 20]);
    let received = plane.transfer_edge("ingest", "process", &payload)?;
    assert_eq!(received, payload, "delivered bytes are identical");

    let breakdown = plane.last_breakdown().expect("edge recorded");
    println!("mode:              {}", breakdown.mode);
    println!("prepare (fn work): {:.4} s", secs(breakdown.prepare_ns));
    println!("transfer:          {:.4} s", secs(breakdown.transfer_ns));
    println!("consume (fn work): {:.4} s", secs(breakdown.consume_ns));
    println!(
        "source shim CPU:   user {:.4} s / kernel {:.4} s",
        secs(plane.shim_of("ingest")?.sandbox().account().user_ns()),
        secs(plane.shim_of("ingest")?.sandbox().account().kernel_ns()),
    );
    println!("payload intact:    {}", received == payload);
    Ok(())
}
